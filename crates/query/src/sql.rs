//! A SQL front-end for the `RA^agg` algebra — the surface syntax the
//! paper's examples use (`SELECT size, avg(rate) AS rate FROM locales
//! GROUP BY size`). Supports:
//!
//! ```sql
//! SELECT [DISTINCT] item [AS name], ...
//! FROM t1 [, t2 | JOIN t2 ON pred] ...
//! [WHERE pred]
//! [GROUP BY col, ...]
//! [UNION | EXCEPT <select>]
//! ```
//!
//! with the scalar operators of Definition 3, the aggregates
//! `sum/count/avg/min/max`, qualified names (`t.col`), and the
//! `make_uncertain(lb, sg, ub)` lens construct of Example 16. Parsed
//! statements lower directly to [`Query`] plans, so the same SQL runs
//! deterministically, over AU-DBs, or through the rewrite middleware.

use audb_core::{lit, EvalError, Expr, Value};

use crate::algebra::{AggFunc, AggSpec, Catalog, Query};

// ---------------------------------------------------------------------------
// tokenizer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Sym(&'static str),
}

fn err(msg: impl Into<String>) -> EvalError {
    EvalError::Unsupported(format!("SQL: {}", msg.into()))
}

fn tokenize(sql: &str) -> Result<Vec<Tok>, EvalError> {
    let mut out = Vec::new();
    let chars: Vec<char> = sql.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            out.push(Tok::Ident(chars[start..i].iter().collect()));
        } else if c.is_ascii_digit()
            || (c == '-'
                && matches!(out.last(), None | Some(Tok::Sym(_)))
                && i + 1 < chars.len()
                && chars[i + 1].is_ascii_digit())
        {
            let start = i;
            i += 1; // first digit or the sign
            let mut is_float = false;
            while i < chars.len() && (chars[i].is_ascii_digit() || (chars[i] == '.' && !is_float)) {
                if chars[i] == '.' {
                    is_float = true;
                }
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            if is_float {
                out.push(Tok::Float(text.parse().map_err(|_| err("bad float"))?));
            } else {
                out.push(Tok::Int(text.parse().map_err(|_| err("bad int"))?));
            }
        } else if c == '\'' {
            let start = i + 1;
            i += 1;
            while i < chars.len() && chars[i] != '\'' {
                i += 1;
            }
            if i >= chars.len() {
                return Err(err("unterminated string literal"));
            }
            out.push(Tok::Str(chars[start..i].iter().collect()));
            i += 1;
        } else {
            let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
            let sym = match two.as_str() {
                "<=" | ">=" | "!=" | "<>" => {
                    i += 2;
                    match two.as_str() {
                        "<=" => "<=",
                        ">=" => ">=",
                        _ => "!=",
                    }
                }
                _ => {
                    i += 1;
                    match c {
                        '(' => "(",
                        ')' => ")",
                        ',' => ",",
                        '.' => ".",
                        '=' => "=",
                        '<' => "<",
                        '>' => ">",
                        '+' => "+",
                        '-' => "-",
                        '*' => "*",
                        '/' => "/",
                        ';' => ";",
                        other => return Err(err(format!("unexpected character {other:?}"))),
                    }
                }
            };
            out.push(Tok::Sym(sym));
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    toks: Vec<Tok>,
    pos: usize,
    catalog: &'a dyn Catalog,
}

/// Column scope of the current FROM clause: (table alias, column name)
/// pairs in plan order.
struct Scope {
    cols: Vec<(String, String)>,
}

impl Scope {
    fn resolve(&self, table: Option<&str>, col: &str) -> Result<usize, EvalError> {
        let matches: Vec<usize> = self
            .cols
            .iter()
            .enumerate()
            .filter(|(_, (t, c))| {
                c.eq_ignore_ascii_case(col) && table.is_none_or(|want| t.eq_ignore_ascii_case(want))
            })
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            0 => Err(EvalError::NotFound(format!(
                "column {}{col}",
                table.map(|t| format!("{t}.")).unwrap_or_default()
            ))),
            1 => Ok(matches[0]),
            _ => Err(err(format!("ambiguous column {col}; qualify it"))),
        }
    }
}

/// Parse a SQL statement into a [`Query`] plan against the catalog.
pub fn parse_sql(sql: &str, catalog: &dyn Catalog) -> Result<Query, EvalError> {
    let toks = tokenize(sql)?;
    let mut p = Parser { toks, pos: 0, catalog };
    let q = p.select_stmt()?;
    p.eat_sym(";").ok();
    if p.pos < p.toks.len() {
        return Err(err(format!("trailing tokens near {:?}", p.toks[p.pos])));
    }
    Ok(q)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), EvalError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(err(format!("expected {kw} near {:?}", self.peek())))
        }
    }

    fn eat_sym(&mut self, sym: &str) -> Result<(), EvalError> {
        match self.peek() {
            Some(Tok::Sym(s)) if *s == sym => {
                self.pos += 1;
                Ok(())
            }
            other => Err(err(format!("expected {sym:?} near {other:?}"))),
        }
    }

    fn peek_sym(&self, sym: &str) -> bool {
        matches!(self.peek(), Some(Tok::Sym(s)) if *s == sym)
    }

    fn ident(&mut self) -> Result<String, EvalError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(err(format!("expected identifier near {other:?}"))),
        }
    }

    // ---- statements -----------------------------------------------------

    fn select_stmt(&mut self) -> Result<Query, EvalError> {
        let q = self.select_core()?;
        if self.eat_kw("union") {
            let rhs = self.select_stmt()?;
            return Ok(q.union(rhs));
        }
        if self.eat_kw("except") {
            let rhs = self.select_stmt()?;
            return Ok(q.difference(rhs));
        }
        Ok(q)
    }

    fn select_core(&mut self) -> Result<Query, EvalError> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");

        // select items are parsed after FROM (we need the scope), so
        // remember their token span and skip ahead.
        let items_start = self.pos;
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            match t {
                Tok::Sym("(") => depth += 1,
                Tok::Sym(")") => depth = depth.saturating_sub(1),
                Tok::Ident(s) if depth == 0 && s.eq_ignore_ascii_case("from") => break,
                _ => {}
            }
            self.pos += 1;
        }
        let items_end = self.pos;
        self.expect_kw("from")?;

        // FROM clause
        let (mut plan, mut scope) = self.table_ref()?;
        loop {
            if self.peek_sym(",") {
                self.eat_sym(",")?;
                let (rhs, rscope) = self.table_ref()?;
                plan = plan.cross(rhs);
                scope.cols.extend(rscope.cols);
            } else if self.peek_kw("join") {
                self.expect_kw("join")?;
                let (rhs, rscope) = self.table_ref()?;
                scope.cols.extend(rscope.cols);
                self.expect_kw("on")?;
                let pred = self.expr(&scope)?;
                plan = plan.join_on(rhs, pred);
            } else {
                break;
            }
        }

        // WHERE
        if self.eat_kw("where") {
            let pred = self.expr(&scope)?;
            plan = plan.select(pred);
        }

        // GROUP BY
        let mut group_by: Vec<usize> = Vec::new();
        let mut grouped = false;
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            grouped = true;
            loop {
                let (t, c) = self.qualified_name()?;
                group_by.push(scope.resolve(t.as_deref(), &c)?);
                if self.peek_sym(",") {
                    self.eat_sym(",")?;
                } else {
                    break;
                }
            }
        }

        // now parse the remembered select items against the scope
        let after = self.pos;
        self.pos = items_start;
        let items = self.select_items(&scope, items_end)?;
        self.pos = after;

        let plan = self.lower_select(plan, &scope, items, grouped, group_by)?;
        Ok(if distinct { plan.distinct() } else { plan })
    }

    fn table_ref(&mut self) -> Result<(Query, Scope), EvalError> {
        let name = self.ident()?;
        let schema = self.catalog.table_schema(&name)?;
        // optional alias: bare identifier that is not a clause keyword
        let alias = match self.peek() {
            Some(Tok::Ident(s))
                if !["join", "on", "where", "group", "union", "except", "as"]
                    .iter()
                    .any(|k| s.eq_ignore_ascii_case(k)) =>
            {
                self.ident()?
            }
            _ => name.clone(),
        };
        let cols = schema.columns().iter().map(|c| (alias.clone(), c.clone())).collect();
        Ok((crate::algebra::table(name), Scope { cols }))
    }

    // ---- select items -----------------------------------------------------

    fn select_items(&mut self, scope: &Scope, end: usize) -> Result<Vec<SelectItem>, EvalError> {
        let mut items = Vec::new();
        if self.peek_sym("*") && self.pos + 1 == end {
            self.eat_sym("*")?;
            for (i, (_, c)) in scope.cols.iter().enumerate() {
                items.push(SelectItem { agg: None, expr: Expr::Col(i), name: c.clone() });
            }
            return Ok(items);
        }
        loop {
            let item = self.select_item(scope)?;
            items.push(item);
            if self.pos < end && self.peek_sym(",") {
                self.eat_sym(",")?;
            } else {
                break;
            }
        }
        if self.pos != end {
            return Err(err("could not parse select list"));
        }
        Ok(items)
    }

    fn select_item(&mut self, scope: &Scope) -> Result<SelectItem, EvalError> {
        // aggregate function?
        if let Some(Tok::Ident(f)) = self.peek() {
            let fl = f.to_ascii_lowercase();
            let agg = match fl.as_str() {
                "sum" => Some(AggFunc::Sum),
                "count" => Some(AggFunc::Count),
                "avg" => Some(AggFunc::Avg),
                "min" => Some(AggFunc::Min),
                "max" => Some(AggFunc::Max),
                _ => None,
            };
            if let Some(func) = agg {
                if matches!(self.toks.get(self.pos + 1), Some(Tok::Sym("("))) {
                    self.pos += 1; // function name
                    self.eat_sym("(")?;
                    let inner = if self.peek_sym("*") {
                        self.eat_sym("*")?;
                        lit(1i64)
                    } else {
                        self.expr(scope)?
                    };
                    self.eat_sym(")")?;
                    let name = self.alias_or(&fl)?;
                    return Ok(SelectItem { agg: Some(func), expr: inner, name });
                }
            }
        }
        let start = self.pos;
        let e = self.expr(scope)?;
        let default_name = match &e {
            Expr::Col(i) => scope.cols[*i].1.clone(),
            _ => format!("expr{start}"),
        };
        let name = self.alias_or(&default_name)?;
        Ok(SelectItem { agg: None, expr: e, name })
    }

    fn alias_or(&mut self, default: &str) -> Result<String, EvalError> {
        if self.eat_kw("as") {
            self.ident()
        } else {
            Ok(default.to_string())
        }
    }

    fn lower_select(
        &self,
        plan: Query,
        scope: &Scope,
        items: Vec<SelectItem>,
        grouped: bool,
        group_by: Vec<usize>,
    ) -> Result<Query, EvalError> {
        let has_aggs = items.iter().any(|i| i.agg.is_some());
        if !has_aggs && !grouped {
            // plain projection
            return Ok(Query::Project {
                input: Box::new(plan),
                exprs: items.into_iter().map(|i| (i.expr, i.name)).collect(),
            });
        }
        // aggregation: non-aggregate items must be group-by columns
        let mut aggs = Vec::new();
        let mut out_positions: Vec<(usize, String)> = Vec::new(); // position in Aggregate output
        let mut agg_index = 0usize;
        for item in &items {
            match item.agg {
                Some(func) => {
                    aggs.push(AggSpec::new(func, item.expr.clone(), item.name.clone()));
                    out_positions.push((group_by.len() + agg_index, item.name.clone()));
                    agg_index += 1;
                }
                None => {
                    let Expr::Col(c) = item.expr else {
                        return Err(err(
                            "non-aggregate select items must be plain group-by columns",
                        ));
                    };
                    let pos = group_by.iter().position(|g| *g == c).ok_or_else(|| {
                        err(format!("column {} is neither aggregated nor grouped", scope.cols[c].1))
                    })?;
                    out_positions.push((pos, item.name.clone()));
                }
            }
        }
        let agg_plan = Query::Aggregate { input: Box::new(plan), group_by, aggs };
        // reorder/rename to the written select order
        Ok(Query::Project {
            input: Box::new(agg_plan),
            exprs: out_positions.into_iter().map(|(pos, name)| (Expr::Col(pos), name)).collect(),
        })
    }

    // ---- expressions -------------------------------------------------------

    fn qualified_name(&mut self) -> Result<(Option<String>, String), EvalError> {
        let first = self.ident()?;
        if self.peek_sym(".") {
            self.eat_sym(".")?;
            let col = self.ident()?;
            Ok((Some(first), col))
        } else {
            Ok((None, first))
        }
    }

    fn expr(&mut self, scope: &Scope) -> Result<Expr, EvalError> {
        self.or_expr(scope)
    }

    fn or_expr(&mut self, scope: &Scope) -> Result<Expr, EvalError> {
        let mut e = self.and_expr(scope)?;
        while self.eat_kw("or") {
            e = e.or(self.and_expr(scope)?);
        }
        Ok(e)
    }

    fn and_expr(&mut self, scope: &Scope) -> Result<Expr, EvalError> {
        let mut e = self.not_expr(scope)?;
        while self.eat_kw("and") {
            e = e.and(self.not_expr(scope)?);
        }
        Ok(e)
    }

    fn not_expr(&mut self, scope: &Scope) -> Result<Expr, EvalError> {
        if self.eat_kw("not") {
            return Ok(self.not_expr(scope)?.not());
        }
        self.cmp_expr(scope)
    }

    fn cmp_expr(&mut self, scope: &Scope) -> Result<Expr, EvalError> {
        let lhs = self.add_expr(scope)?;
        let op = match self.peek() {
            Some(Tok::Sym(s)) if ["=", "!=", "<", "<=", ">", ">="].contains(s) => *s,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.add_expr(scope)?;
        Ok(match op {
            "=" => lhs.eq(rhs),
            "!=" => lhs.neq(rhs),
            "<" => lhs.lt(rhs),
            "<=" => lhs.leq(rhs),
            ">" => lhs.gt(rhs),
            _ => lhs.geq(rhs),
        })
    }

    fn add_expr(&mut self, scope: &Scope) -> Result<Expr, EvalError> {
        let mut e = self.mul_expr(scope)?;
        loop {
            if self.peek_sym("+") {
                self.eat_sym("+")?;
                e = e.add(self.mul_expr(scope)?);
            } else if self.peek_sym("-") {
                self.eat_sym("-")?;
                e = e.sub(self.mul_expr(scope)?);
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn mul_expr(&mut self, scope: &Scope) -> Result<Expr, EvalError> {
        let mut e = self.unary_expr(scope)?;
        loop {
            if self.peek_sym("*") {
                self.eat_sym("*")?;
                e = e.mul(self.unary_expr(scope)?);
            } else if self.peek_sym("/") {
                self.eat_sym("/")?;
                e = e.div(self.unary_expr(scope)?);
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn unary_expr(&mut self, scope: &Scope) -> Result<Expr, EvalError> {
        if self.peek_sym("-") {
            self.eat_sym("-")?;
            return Ok(self.unary_expr(scope)?.neg());
        }
        self.primary(scope)
    }

    fn primary(&mut self, scope: &Scope) -> Result<Expr, EvalError> {
        match self.peek().cloned() {
            Some(Tok::Int(v)) => {
                self.pos += 1;
                Ok(lit(v))
            }
            Some(Tok::Float(v)) => {
                self.pos += 1;
                Ok(lit(v))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Const(Value::Str(s)))
            }
            Some(Tok::Sym("(")) => {
                self.eat_sym("(")?;
                let e = self.expr(scope)?;
                self.eat_sym(")")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                let lower = name.to_ascii_lowercase();
                if lower == "true" || lower == "false" {
                    self.pos += 1;
                    return Ok(lit(lower == "true"));
                }
                if lower == "null" {
                    self.pos += 1;
                    return Ok(Expr::Const(Value::Null));
                }
                // the lens construct of Example 16
                if lower == "make_uncertain"
                    && matches!(self.toks.get(self.pos + 1), Some(Tok::Sym("(")))
                {
                    self.pos += 1;
                    self.eat_sym("(")?;
                    let lb = self.expr(scope)?;
                    self.eat_sym(",")?;
                    let sg = self.expr(scope)?;
                    self.eat_sym(",")?;
                    let ub = self.expr(scope)?;
                    self.eat_sym(")")?;
                    return Ok(Expr::make_uncertain(lb, sg, ub));
                }
                if lower == "case" {
                    return self.case_expr(scope);
                }
                let (t, c) = self.qualified_name()?;
                Ok(Expr::Col(scope.resolve(t.as_deref(), &c)?))
            }
            other => Err(err(format!("unexpected token {other:?} in expression"))),
        }
    }

    /// `CASE WHEN cond THEN e1 ELSE e2 END`
    fn case_expr(&mut self, scope: &Scope) -> Result<Expr, EvalError> {
        self.expect_kw("case")?;
        self.expect_kw("when")?;
        let cond = self.expr(scope)?;
        self.expect_kw("then")?;
        let then = self.expr(scope)?;
        self.expect_kw("else")?;
        let els = self.expr(scope)?;
        self.expect_kw("end")?;
        Ok(Expr::if_then_else(cond, then, els))
    }
}

struct SelectItem {
    agg: Option<AggFunc>,
    expr: Expr,
    name: String,
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::au::{eval_au, AuConfig};
    use crate::det::eval_det;
    use audb_core::RangeValue;
    use audb_storage::{au_row, AuDatabase, AuRelation, Database, Relation, Schema, Tuple};

    fn det_db() -> Database {
        let mut db = Database::new();
        db.insert(
            "locales",
            Relation::from_tuples(
                Schema::named(&["locale", "rate", "size"]),
                vec![
                    t(&["LA", "3", "metro"]),
                    t(&["Austin", "18", "city"]),
                    t(&["Houston", "14", "metro"]),
                ],
            ),
        );
        db
    }

    fn t(vals: &[&str]) -> Tuple {
        Tuple::new(
            vals.iter()
                .map(|v| match v.parse::<i64>() {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::str(*v),
                })
                .collect(),
        )
    }

    #[test]
    fn parses_the_papers_intro_query() {
        let db = det_db();
        let q =
            parse_sql("SELECT size, avg(rate) AS rate FROM locales GROUP BY size", &db).unwrap();
        let out = eval_det(&db, &q).unwrap();
        assert_eq!(out.schema, Schema::named(&["size", "rate"]));
        // metro group: (3 + 14) / 2 = 8.5
        let metro = out.rows().iter().find(|(t, _)| t.0[0] == Value::str("metro")).unwrap();
        assert_eq!(metro.0 .0[1], Value::float(8.5));
    }

    #[test]
    fn select_where_project_and_aliases() {
        let db = det_db();
        let q = parse_sql(
            "SELECT locale, rate + 1 AS bumped FROM locales WHERE rate >= 10 AND size = 'metro'",
            &db,
        )
        .unwrap();
        let out = eval_det(&db, &q).unwrap();
        assert_eq!(out.total_count(), 1);
        assert_eq!(out.rows()[0].0 .0[1], Value::Int(15));
    }

    #[test]
    fn joins_with_qualified_names() {
        let mut db = det_db();
        db.insert(
            "sizes",
            Relation::from_tuples(
                Schema::named(&["name", "ord"]),
                vec![t(&["metro", "3"]), t(&["city", "2"])],
            ),
        );
        let q = parse_sql(
            "SELECT locales.locale, sizes.ord FROM locales JOIN sizes ON locales.size = sizes.name",
            &db,
        )
        .unwrap();
        let out = eval_det(&db, &q).unwrap();
        assert_eq!(out.total_count(), 3);
    }

    #[test]
    fn union_except_distinct_star() {
        let db = det_db();
        let q = parse_sql("SELECT DISTINCT size FROM locales UNION SELECT size FROM locales", &db)
            .unwrap();
        let out = eval_det(&db, &q).unwrap();
        assert_eq!(out.len(), 2); // metro, city (bag union keeps mults)

        let q = parse_sql(
            "SELECT size FROM locales EXCEPT SELECT size FROM locales WHERE rate > 10",
            &db,
        )
        .unwrap();
        let out = eval_det(&db, &q).unwrap();
        assert_eq!(out.total_count(), 1); // one metro survives

        let q = parse_sql("SELECT * FROM locales", &db).unwrap();
        assert_eq!(eval_det(&db, &q).unwrap().total_count(), 3);
    }

    #[test]
    fn case_and_count_star() {
        let db = det_db();
        let q = parse_sql(
            "SELECT size, count(*) AS n, \
             sum(CASE WHEN rate > 10 THEN 1 ELSE 0 END) AS hot \
             FROM locales GROUP BY size",
            &db,
        )
        .unwrap();
        let out = eval_det(&db, &q).unwrap();
        let metro = out.rows().iter().find(|(t, _)| t.0[0] == Value::str("metro")).unwrap();
        assert_eq!(metro.0 .0[1], Value::Int(2));
        assert_eq!(metro.0 .0[2], Value::Int(1));
    }

    #[test]
    fn same_sql_runs_over_au_dbs() {
        let mut audb = AuDatabase::new();
        audb.insert(
            "locales",
            AuRelation::from_rows(
                Schema::named(&["locale", "rate", "size"]),
                vec![
                    au_row(
                        vec![
                            RangeValue::certain(Value::str("LA")),
                            RangeValue::range(3i64, 3i64, 4i64),
                            RangeValue::certain(Value::str("metro")),
                        ],
                        1,
                        1,
                        1,
                    ),
                    au_row(
                        vec![
                            RangeValue::certain(Value::str("Houston")),
                            RangeValue::certain(Value::Int(14)),
                            RangeValue::certain(Value::str("metro")),
                        ],
                        1,
                        1,
                        1,
                    ),
                ],
            ),
        );
        let q =
            parse_sql("SELECT size, avg(rate) AS rate FROM locales GROUP BY size", &audb).unwrap();
        let out = eval_au(&audb, &q, &AuConfig::precise()).unwrap();
        let rate = &out.rows()[0].0 .0[1];
        assert_eq!(rate.lb, Value::float(8.5));
        assert_eq!(rate.ub, Value::float(9.0));
    }

    #[test]
    fn make_uncertain_in_sql() {
        let db = det_db();
        let q = parse_sql(
            "SELECT locale, make_uncertain(rate - 1, rate, rate + 2) AS r FROM locales",
            &db,
        )
        .unwrap();
        // deterministic evaluation sees the selected guess
        let out = eval_det(&db, &q).unwrap();
        assert!(out.rows().iter().any(|(t, _)| t.0[1] == Value::Int(3)));
        // AU evaluation sees the ranges
        let au = audb_storage::AuDatabase::from_certain(&db);
        let out = eval_au(&au, &q, &AuConfig::precise()).unwrap();
        let la = out.rows().iter().find(|(t, _)| t.0[0].sg == Value::str("LA")).unwrap();
        assert_eq!(la.0 .0[1], RangeValue::range(2i64, 3i64, 5i64));
    }

    #[test]
    fn errors_are_informative() {
        let db = det_db();
        assert!(parse_sql("SELECT nope FROM locales", &db).is_err());
        assert!(parse_sql("SELECT rate FROM missing", &db).is_err());
        assert!(parse_sql("SELECT rate FROM locales GROUP BY size", &db).is_err());
        assert!(parse_sql("SELECT 'unterminated FROM locales", &db).is_err());
    }

    #[test]
    fn ambiguity_requires_qualification() {
        let mut db = det_db();
        db.insert(
            "locales2",
            Relation::from_tuples(Schema::named(&["locale", "x"]), vec![t(&["LA", "1"])]),
        );
        let q = parse_sql("SELECT locale FROM locales, locales2", &db);
        assert!(q.is_err(), "bare `locale` is ambiguous");
        let q = parse_sql("SELECT locales.locale FROM locales, locales2", &db);
        assert!(q.is_ok());
    }
}
