//! Join planning: classify the join predicate and route execution to an
//! index-backed physical strategy (Section 10.4's observation that
//! AU-joins are fast exactly when the representation admits standard
//! index structures).
//!
//! Predicate classes and the strategy each one fires:
//!
//! * **conjunctive equality** `⋀ Col(l) = Col(r)` → [`JoinStrategy::HashEqui`]:
//!   hash join on canonical selected-guess keys for rows whose key
//!   attributes are certain, plus interval plane sweeps
//!   ([`IntervalIndex::sweep_overlapping`]) that band-filter the
//!   (typically small) uncertain-key row sets against the other side;
//! * **single order comparison** `Col θ Col` with `θ ∈ {<, ≤, >, ≥}` →
//!   [`JoinStrategy::IntervalComparison`]: sorted-endpoint sweep
//!   ([`IntervalIndex::sweep_lb_below_ub`]) enumerating exactly the
//!   pairs whose ranges may satisfy the comparison;
//! * anything else → [`JoinStrategy::NestedLoop`], the formal-semantics
//!   fallback ([`nested_loop_join_au_exec`]).
//!
//! Candidate sets are supersets of the possibly-satisfying pairs; every
//! candidate is re-checked with the precise range-annotated predicate
//! semantics, so each strategy produces (after normalization) exactly
//! the nested-loop result — see `tests/join_equivalence.rs`.
//!
//! ### Parallel execution
//!
//! The probe and candidate-evaluation loops of both accelerated
//! strategies run on the [`Executor`] runtime: the certain-key probe
//! side and the sweep candidate lists are partitioned into morsels,
//! evaluated on the scoped pool, and merged in morsel order — so the
//! output row list is byte-identical to the sequential one for every
//! worker count (`tests/exec_equivalence.rs` pins this down). Index
//! construction and the sweeps themselves stay sequential: they are
//! `O(n log n)` and cheap relative to candidate evaluation.

use audb_core::{AuAnnot, EvalError, ExecError, Expr, Semiring, Value};
use audb_exec::Executor;
use audb_storage::{AuRelation, HashKeyIndex, IntervalIndex, RangeTuple, Relation, Tuple};

use crate::au::nested_loop_join_au_exec;

/// Governance stride for the probe loops: every `GOVERN_ROWS` emitted
/// rows the worker re-checks the cancel token and charges the growth to
/// the budget (operator `"join-probe"`), bounding how far an expanding
/// join can overshoot its limits within one morsel.
const GOVERN_ROWS: usize = 1024;

/// Cancellation + budget checkpoint for a probe loop: charge the output
/// rows produced since `watermark` as `"join-probe"`.
fn charge_probe<T>(exec: &Executor, out: &[T], watermark: &mut usize) -> Result<(), ExecError> {
    exec.check_cancel()?;
    let added = out.len().saturating_sub(*watermark);
    if added > 0 {
        let bytes = added * std::mem::size_of::<T>();
        exec.charge("join-probe", added as u64, bytes as u64)?;
        *watermark = out.len();
    }
    Ok(())
}

/// Which input relation a predicate column belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    Left,
    Right,
}

/// The physical strategy chosen for a join predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Conjunctive equality on the given (left, right) column pairs.
    HashEqui(Vec<(usize, usize)>),
    /// A single order comparison; the predicate may hold only when the
    /// lower endpoint of `lo`'s column is ≤ the upper endpoint of
    /// `hi`'s column. Columns are local to their side.
    IntervalComparison { lo: (Side, usize), hi: (Side, usize) },
    /// Cross products and every predicate shape the indexes cannot
    /// accelerate.
    NestedLoop,
}

impl JoinStrategy {
    /// Stable strategy name, as reported in query traces.
    pub fn name(&self) -> &'static str {
        match self {
            JoinStrategy::HashEqui(_) => "hash-equi",
            JoinStrategy::IntervalComparison { .. } => "interval-comparison",
            JoinStrategy::NestedLoop => "nested-loop",
        }
    }
}

/// Classify a join predicate over the concatenated schema split at
/// `split` (the left arity).
pub fn classify(predicate: Option<&Expr>, split: usize) -> JoinStrategy {
    let Some(p) = predicate else {
        return JoinStrategy::NestedLoop;
    };
    if let Some(pairs) = p.equi_join_columns(split) {
        if !pairs.is_empty() {
            return JoinStrategy::HashEqui(pairs);
        }
    }
    // single comparison: normalize `a θ b` to "lo.lb ≤~ hi.ub possible"
    let comparison = match p {
        Expr::Leq(a, b) | Expr::Lt(a, b) => Some((a, b)),
        Expr::Geq(a, b) | Expr::Gt(a, b) => Some((b, a)),
        _ => None,
    };
    if let Some((lo, hi)) = comparison {
        if let (Expr::Col(x), Expr::Col(y)) = (lo.as_ref(), hi.as_ref()) {
            match (*x < split, *y < split) {
                (true, false) => {
                    return JoinStrategy::IntervalComparison {
                        lo: (Side::Left, *x),
                        hi: (Side::Right, *y - split),
                    }
                }
                (false, true) => {
                    return JoinStrategy::IntervalComparison {
                        lo: (Side::Right, *x - split),
                        hi: (Side::Left, *y),
                    }
                }
                _ => {}
            }
        }
    }
    JoinStrategy::NestedLoop
}

/// Theta-join over AU-relations through the planner, on the default
/// executor (all available workers). Produces the same rows as
/// [`nested_loop_join_au`] (up to order / normalization).
pub fn join_au_planned(
    l: &AuRelation,
    r: &AuRelation,
    predicate: Option<&Expr>,
) -> Result<AuRelation, EvalError> {
    join_au_planned_exec(l, r, predicate, &Executor::default())
}

/// Theta-join over AU-relations through the planner on an explicit
/// executor. `Executor::sequential()` reproduces the single-threaded
/// behavior exactly; any worker count produces a byte-identical result.
pub fn join_au_planned_exec(
    l: &AuRelation,
    r: &AuRelation,
    predicate: Option<&Expr>,
    exec: &Executor,
) -> Result<AuRelation, EvalError> {
    #[allow(clippy::expect_used)] // classify returns keyed strategies only for Some(predicate)
    match classify(predicate, l.schema.arity()) {
        JoinStrategy::HashEqui(pairs) => {
            hash_equi_join_au(l, r, predicate.expect("equi plan implies predicate"), &pairs, exec)
        }
        JoinStrategy::IntervalComparison { lo, hi } => comparison_join_au(
            l,
            r,
            predicate.expect("comparison plan implies predicate"),
            lo,
            hi,
            exec,
        ),
        JoinStrategy::NestedLoop => nested_loop_join_au_exec(l, r, predicate, exec),
    }
}

/// Row ids whose key attributes are all certain / not all certain.
pub(crate) fn partition_by_key_certainty(
    rows: &[(RangeTuple, AuAnnot)],
    cols: &[usize],
) -> (Vec<u32>, Vec<u32>) {
    let mut certain = Vec::with_capacity(rows.len());
    let mut uncertain = Vec::new();
    for (i, (t, _)) in rows.iter().enumerate() {
        if cols.iter().all(|c| t.0[*c].is_certain()) {
            certain.push(i as u32);
        } else {
            uncertain.push(i as u32);
        }
    }
    (certain, uncertain)
}

/// Multiply annotations with the precise range-annotated predicate
/// result and append the joined row; short-circuits to `⊗` alone when
/// the key attributes are structurally equal and certain (predicate
/// triple is then (T, T, T) by construction).
fn emit_equi_pair(
    out: &mut Vec<(RangeTuple, AuAnnot)>,
    l: &(RangeTuple, AuAnnot),
    r: &(RangeTuple, AuAnnot),
    predicate: &Expr,
    pairs: &[(usize, usize)],
) -> Result<(), EvalError> {
    let (tl, kl) = l;
    let (tr, kr) = r;
    let fast = pairs.iter().all(|(a, b)| {
        let (x, y) = (&tl.0[*a], &tr.0[*b]);
        x.is_certain() && x == y
    });
    let t = tl.concat(tr);
    let mut k = kl.times(kr);
    if !fast {
        let (plb, psg, pub_) = predicate.eval_range_bool3(t.values())?;
        if !pub_ {
            return Ok(());
        }
        k = k.times(&AuAnnot::from_bool3(plb, psg, pub_));
    }
    out.push((t, k));
    Ok(())
}

fn hash_equi_join_au(
    l: &AuRelation,
    r: &AuRelation,
    predicate: &Expr,
    pairs: &[(usize, usize)],
    exec: &Executor,
) -> Result<AuRelation, EvalError> {
    let mut out = AuRelation::empty(l.schema.concat(&r.schema));
    let lcols: Vec<usize> = pairs.iter().map(|(a, _)| *a).collect();
    let rcols: Vec<usize> = pairs.iter().map(|(_, b)| *b).collect();
    let (lc, lu) = partition_by_key_certainty(l.rows(), &lcols);
    let (rc, ru) = partition_by_key_certainty(r.rows(), &rcols);

    // certain × certain: hash join on canonical SG keys; the probe side
    // is partitioned into morsels and probed in parallel against the
    // shared (read-only) bucket index
    if !lc.is_empty() && !rc.is_empty() {
        let index = HashKeyIndex::from_au_sg(r.rows(), &rcols, rc.iter().copied());
        let rows = exec.run(lc.len(), |morsel, rows: &mut Vec<(RangeTuple, AuAnnot)>| {
            let mut key: Vec<Value> = Vec::with_capacity(pairs.len());
            let mut watermark = 0usize;
            for &li in &lc[morsel] {
                if rows.len() - watermark >= GOVERN_ROWS {
                    charge_probe(exec, rows, &mut watermark)?;
                }
                let row_l = &l.rows()[li as usize];
                key.clear();
                key.extend(lcols.iter().map(|c| row_l.0 .0[*c].sg.join_key()));
                for &ri in index.get(&key) {
                    emit_equi_pair(rows, row_l, &r.rows()[ri as usize], predicate, pairs)?;
                }
            }
            charge_probe(exec, rows, &mut watermark)?;
            Ok::<(), EvalError>(())
        })?;
        out.append_rows(rows);
    }

    // band filtering for uncertain-key rows: plane sweeps on the first
    // pair's interval indexes cover (uncertain × all) and
    // (certain × uncertain) without double counting; the candidate
    // blocks are then evaluated in parallel
    let (c0l, c0r) = pairs[0];
    let mut candidates: Vec<(u32, u32)> = Vec::new();
    if !lu.is_empty() {
        let li = IntervalIndex::from_au_subset(l.rows(), c0l, &lu);
        let ri = IntervalIndex::from_au(r.rows(), c0r);
        IntervalIndex::sweep_overlapping(&li, &ri, |a, b| candidates.push((a, b)));
    }
    if !ru.is_empty() && !lc.is_empty() {
        let li = IntervalIndex::from_au_subset(l.rows(), c0l, &lc);
        let ri = IntervalIndex::from_au_subset(r.rows(), c0r, &ru);
        IntervalIndex::sweep_overlapping(&li, &ri, |a, b| candidates.push((a, b)));
    }
    let rows = exec.run(candidates.len(), |morsel, rows: &mut Vec<(RangeTuple, AuAnnot)>| {
        let mut watermark = 0usize;
        for &(a, b) in &candidates[morsel] {
            if rows.len() - watermark >= GOVERN_ROWS {
                charge_probe(exec, rows, &mut watermark)?;
            }
            emit_equi_pair(rows, &l.rows()[a as usize], &r.rows()[b as usize], predicate, pairs)?;
        }
        charge_probe(exec, rows, &mut watermark)?;
        Ok::<(), EvalError>(())
    })?;
    out.append_rows(rows);
    Ok(out)
}

/// Candidate `(left_row, right_row)` pairs of an interval-comparison
/// plan: one `sweep_lb_below_ub` pass, oriented by which side provides
/// the lower-endpoint column. Shared by the AU and deterministic join
/// paths so their sweep semantics cannot drift apart; `index_left`/
/// `index_right` build the interval index for a column of the
/// respective input.
pub(crate) fn comparison_candidates(
    lo: (Side, usize),
    hi: (Side, usize),
    index_left: impl Fn(usize) -> IntervalIndex,
    index_right: impl Fn(usize) -> IntervalIndex,
) -> Vec<(u32, u32)> {
    let mut candidates: Vec<(u32, u32)> = Vec::new();
    match (lo.0, hi.0) {
        (Side::Left, Side::Right) => {
            let li = index_left(lo.1);
            let ri = index_right(hi.1);
            IntervalIndex::sweep_lb_below_ub(&li, &ri, |a, b| candidates.push((a, b)));
        }
        (Side::Right, Side::Left) => {
            let loi = index_right(lo.1);
            let hii = index_left(hi.1);
            IntervalIndex::sweep_lb_below_ub(&loi, &hii, |a, b| candidates.push((b, a)));
        }
        // `classify` only emits cross-side comparisons
        _ => unreachable!("comparison plan with both columns on one side"),
    }
    candidates
}

fn comparison_join_au(
    l: &AuRelation,
    r: &AuRelation,
    predicate: &Expr,
    lo: (Side, usize),
    hi: (Side, usize),
    exec: &Executor,
) -> Result<AuRelation, EvalError> {
    let mut out = AuRelation::empty(l.schema.concat(&r.schema));
    let candidates = comparison_candidates(
        lo,
        hi,
        |c| IntervalIndex::from_au(l.rows(), c),
        |c| IntervalIndex::from_au(r.rows(), c),
    );
    let rows = exec.run(candidates.len(), |morsel, rows: &mut Vec<(RangeTuple, AuAnnot)>| {
        let mut watermark = 0usize;
        for &(a, b) in &candidates[morsel] {
            if rows.len() - watermark >= GOVERN_ROWS {
                charge_probe(exec, rows, &mut watermark)?;
            }
            let (tl, kl) = &l.rows()[a as usize];
            let (tr, kr) = &r.rows()[b as usize];
            let t = tl.concat(tr);
            let (plb, psg, pub_) = predicate.eval_range_bool3(t.values())?;
            if !pub_ {
                continue;
            }
            let k = kl.times(kr).times(&AuAnnot::from_bool3(plb, psg, pub_));
            rows.push((t, k));
        }
        charge_probe(exec, rows, &mut watermark)?;
        Ok::<(), EvalError>(())
    })?;
    out.append_rows(rows);
    Ok(out)
}

/// Theta-join over deterministic relations through the planner, on the
/// default executor.
pub fn join_det_planned(
    l: &Relation,
    r: &Relation,
    predicate: Option<&Expr>,
) -> Result<Relation, EvalError> {
    join_det_planned_exec(l, r, predicate, &Executor::default())
}

/// Theta-join over deterministic relations through the planner on an
/// explicit executor.
pub fn join_det_planned_exec(
    l: &Relation,
    r: &Relation,
    predicate: Option<&Expr>,
    exec: &Executor,
) -> Result<Relation, EvalError> {
    let mut out = Relation::empty(l.schema.concat(&r.schema));
    match classify(predicate, l.schema.arity()) {
        JoinStrategy::HashEqui(pairs) => {
            // canonical keys match exactly when `value_eq` holds on every
            // pair, which for a pure conjunctive equality predicate is
            // the predicate itself — no re-evaluation needed.
            let lcols: Vec<usize> = pairs.iter().map(|(a, _)| *a).collect();
            let rcols: Vec<usize> = pairs.iter().map(|(_, b)| *b).collect();
            let index = HashKeyIndex::from_det(r.rows(), &rcols);
            let rows = exec.run(l.rows().len(), |morsel, rows: &mut Vec<(Tuple, u64)>| {
                let mut key: Vec<Value> = Vec::with_capacity(pairs.len());
                let mut watermark = 0usize;
                for (tl, kl) in &l.rows()[morsel] {
                    if rows.len() - watermark >= GOVERN_ROWS {
                        charge_probe(exec, rows, &mut watermark)?;
                    }
                    key.clear();
                    key.extend(lcols.iter().map(|c| tl.0[*c].join_key()));
                    for &ri in index.get(&key) {
                        let (tr, kr) = &r.rows()[ri as usize];
                        rows.push((tl.concat(tr), kl * kr));
                    }
                }
                charge_probe(exec, rows, &mut watermark)?;
                Ok::<(), EvalError>(())
            })?;
            out.append_rows(rows);
        }
        JoinStrategy::IntervalComparison { lo, hi } => {
            #[allow(clippy::expect_used)] // classify returns Comparison only for Some(predicate)
            let p = predicate.expect("comparison plan implies predicate");
            let candidates = comparison_candidates(
                lo,
                hi,
                |c| IntervalIndex::from_det(l.rows(), c),
                |c| IntervalIndex::from_det(r.rows(), c),
            );
            let rows = exec.run(candidates.len(), |morsel, rows: &mut Vec<(Tuple, u64)>| {
                let mut watermark = 0usize;
                for &(a, b) in &candidates[morsel] {
                    if rows.len() - watermark >= GOVERN_ROWS {
                        charge_probe(exec, rows, &mut watermark)?;
                    }
                    let (tl, kl) = &l.rows()[a as usize];
                    let (tr, kr) = &r.rows()[b as usize];
                    let t = tl.concat(tr);
                    if p.eval_bool(t.values())? {
                        rows.push((t, kl * kr));
                    }
                }
                charge_probe(exec, rows, &mut watermark)?;
                Ok::<(), EvalError>(())
            })?;
            out.append_rows(rows);
        }
        JoinStrategy::NestedLoop => {
            let mut watermark = 0usize;
            for (tl, kl) in l.rows() {
                if out.rows().len() - watermark >= GOVERN_ROWS {
                    charge_probe(exec, out.rows(), &mut watermark)?;
                }
                for (tr, kr) in r.rows() {
                    let t = tl.concat(tr);
                    let keep = match predicate {
                        Some(p) => p.eval_bool(t.values())?,
                        None => true,
                    };
                    if keep {
                        out.push(t, kl * kr);
                    }
                }
            }
            charge_probe(exec, out.rows(), &mut watermark)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use audb_core::{col, lit};

    #[test]
    fn classification_covers_the_three_classes() {
        let equi = col(0).eq(col(2)).and(col(1).eq(col(3)));
        assert_eq!(classify(Some(&equi), 2), JoinStrategy::HashEqui(vec![(0, 0), (1, 1)]));

        let cmp = col(0).leq(col(2));
        assert_eq!(
            classify(Some(&cmp), 2),
            JoinStrategy::IntervalComparison { lo: (Side::Left, 0), hi: (Side::Right, 0) }
        );
        // flipped operand order and direction
        let cmp = col(3).gt(col(1));
        assert_eq!(
            classify(Some(&cmp), 2),
            JoinStrategy::IntervalComparison { lo: (Side::Left, 1), hi: (Side::Right, 1) }
        );
        let cmp = col(0).geq(col(2));
        assert_eq!(
            classify(Some(&cmp), 2),
            JoinStrategy::IntervalComparison { lo: (Side::Right, 0), hi: (Side::Left, 0) }
        );

        assert_eq!(classify(None, 2), JoinStrategy::NestedLoop);
        let theta = col(0).leq(col(2)).and(col(1).leq(col(3)));
        assert_eq!(classify(Some(&theta), 2), JoinStrategy::NestedLoop);
        let local = col(0).lt(col(1));
        assert_eq!(classify(Some(&local), 2), JoinStrategy::NestedLoop);
        let vs_lit = col(0).eq(lit(3i64));
        assert_eq!(classify(Some(&vs_lit), 2), JoinStrategy::NestedLoop);
    }
}
