//! # audb-query
//!
//! `RA^agg` evaluation over the three database flavours:
//!
//! * [`det`] — deterministic bag semantics (the conventional engine,
//!   also used for selected-guess query processing);
//! * [`au`] — native bound-preserving AU-DB semantics (Sections 7–9)
//!   with the compaction optimizations of Section 10.4/10.5 ([`opt`]);
//! * [`ua`] — UA-DB semantics (the predecessor model);
//! * [`rewrite`] — the relational-encoding middleware (Section 10):
//!   `Enc`/`Dec` plus query rewriting executed on the deterministic
//!   engine, proven equivalent to the native semantics by differential
//!   tests (Theorem 8);
//! * [`sql`] — a SQL front-end lowering `SELECT`-`FROM`-`WHERE`-
//!   `GROUP BY` (+`UNION`/`EXCEPT`/`CASE`/`make_uncertain`) to plans.
//!
//! This crate denies stray `unwrap`/`expect` in non-test code
//! (`clippy::unwrap_used`/`expect_used`), matching the execution
//! runtime: every evaluation entry point returns `Result`, and the
//! engine's panic containment must not be defeated by its own callers.

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub use audb_exec as exec;

pub mod algebra;
pub mod au;
pub mod det;
pub mod opt;
pub mod planner;
pub mod prepare;
pub mod rewrite;
pub mod sql;
pub mod ua;
pub mod vcheck;

pub use algebra::{table, AggFunc, AggSpec, Catalog, Query};
pub use au::{
    eval_au, eval_au_cancellable, eval_au_once, eval_au_traced, eval_au_traced_full, explain,
    AuConfig, Explain,
};
pub use audb_exec::{Executor, Partitioner};
pub use det::eval_det;
pub use planner::{classify, JoinStrategy};
pub use prepare::{with_program_cache, CacheStats, ProgramCache};
pub use sql::parse_sql;
pub use ua::eval_ua;
pub use vcheck::with_tampered_programs;
