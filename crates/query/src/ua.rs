//! Query evaluation over UA-DBs (Section 3.3, [Feng et al. 2019]) —
//! the baseline model AU-DBs extend. `RA+` preserves UA bounds; set
//! difference is *not* supported (no upper bound on possible answers);
//! aggregation degrades to SGW results with no certain annotations, as
//! discussed in the paper's Section 12.3.

use std::collections::HashMap;

use audb_core::{EvalError, Semiring, UaAnnot, Value};
use audb_storage::{Schema, Tuple, UaDatabase, UaRelation};

use crate::algebra::Query;
use crate::det;

/// Evaluate a query over a UA-database.
pub fn eval_ua(db: &UaDatabase, q: &Query) -> Result<UaRelation, EvalError> {
    Ok(eval_inner(db, q)?.normalized_rel())
}

trait NormalizedExt {
    fn normalized_rel(self) -> UaRelation;
}
impl NormalizedExt for UaRelation {
    fn normalized_rel(mut self) -> UaRelation {
        self.normalize();
        self
    }
}

fn eval_inner(db: &UaDatabase, q: &Query) -> Result<UaRelation, EvalError> {
    match q {
        Query::Table(name) => Ok(db.get(name)?.clone()),
        Query::Select { input, predicate } => {
            let rel = eval_inner(db, input)?;
            let mut out = UaRelation::empty(rel.schema.clone());
            for (t, k) in rel.rows() {
                if predicate.eval_bool(t.values())? {
                    out.push(t.clone(), *k);
                }
            }
            Ok(out)
        }
        Query::Project { input, exprs } => {
            let rel = eval_inner(db, input)?;
            let schema = Schema::new(exprs.iter().map(|(_, n)| n.clone()).collect());
            let mut out = UaRelation::empty(schema);
            for (t, k) in rel.rows() {
                let vals: Result<Vec<Value>, _> =
                    exprs.iter().map(|(e, _)| e.eval(t.values())).collect();
                out.push(Tuple::new(vals?), *k);
            }
            Ok(out)
        }
        Query::Join { left, right, predicate } => {
            let l = eval_inner(db, left)?;
            let r = eval_inner(db, right)?;
            join_ua(&l, &r, predicate.as_ref())
        }
        Query::Union { left, right } => {
            let l = eval_inner(db, left)?;
            let r = eval_inner(db, right)?;
            l.schema.check_union_compatible(&r.schema)?;
            let mut out = l;
            for (t, k) in r.rows() {
                out.push(t.clone(), *k);
            }
            Ok(out)
        }
        Query::Difference { .. } => Err(EvalError::Unsupported(
            "set difference over UA-DBs (non-monotone queries need an upper bound on possible \
             answers; use AU-DBs)"
                .into(),
        )),
        Query::Distinct { input } => {
            let rel = eval_inner(db, input)?.normalized_rel();
            let mut out = UaRelation::empty(rel.schema.clone());
            for (t, k) in rel.rows() {
                out.push(
                    t.clone(),
                    UaAnnot::new(if k.certain > 0 { 1 } else { 0 }, if k.sg > 0 { 1 } else { 0 }),
                );
            }
            Ok(out)
        }
        Query::Aggregate { input, group_by, aggs } => {
            // Aggregates over UA-DBs return no certain answers (paper
            // §12.3): compute the SGW result deterministically and mark
            // every output tuple with certain multiplicity 0.
            let rel = eval_inner(db, input)?;
            let sgw = rel.sg_world();
            let agg = det::aggregate_det(&sgw, group_by, aggs)?;
            let mut out = UaRelation::empty(agg.schema.clone());
            for (t, k) in agg.rows() {
                out.push(t.clone(), UaAnnot::new(0, *k));
            }
            Ok(out)
        }
    }
}

fn join_ua(
    l: &UaRelation,
    r: &UaRelation,
    predicate: Option<&Expr>,
) -> Result<UaRelation, EvalError> {
    let schema = l.schema.concat(&r.schema);
    let split = l.schema.arity();
    let mut out = UaRelation::empty(schema);

    if let Some(pairs) = predicate.and_then(|p| p.equi_join_columns(split)) {
        let mut index: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (i, (t, _)) in r.rows().iter().enumerate() {
            let key: Vec<Value> = pairs.iter().map(|(_, rc)| t.0[*rc].clone()).collect();
            index.entry(key).or_default().push(i);
        }
        for (tl, kl) in l.rows() {
            let key: Vec<Value> = pairs.iter().map(|(lc, _)| tl.0[*lc].clone()).collect();
            if let Some(matches) = index.get(&key) {
                for &i in matches {
                    let (tr, kr) = &r.rows()[i];
                    out.push(tl.concat(tr), kl.times(kr));
                }
            }
        }
        return Ok(out);
    }

    for (tl, kl) in l.rows() {
        for (tr, kr) in r.rows() {
            let t = tl.concat(tr);
            let keep = match predicate {
                Some(p) => p.eval_bool(t.values())?,
                None => true,
            };
            if keep {
                out.push(t, kl.times(kr));
            }
        }
    }
    Ok(out)
}

use audb_core::Expr;

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::algebra::{table, AggFunc, AggSpec};
    use audb_core::{col, lit};

    fn it(vs: &[i64]) -> Tuple {
        vs.iter().copied().collect()
    }

    fn db() -> UaDatabase {
        let mut db = UaDatabase::new();
        db.insert(
            "r",
            UaRelation::from_rows(
                Schema::named(&["a", "b"]),
                vec![
                    (it(&[1, 10]), UaAnnot::new(1, 1)),
                    (it(&[2, 20]), UaAnnot::new(0, 1)),
                    (it(&[3, 20]), UaAnnot::new(2, 3)),
                ],
            ),
        );
        db
    }

    #[test]
    fn select_preserves_pairs() {
        let q = table("r").select(col(1).eq(lit(20i64)));
        let out = eval_ua(&db(), &q).unwrap();
        assert_eq!(out.annotation(&it(&[3, 20])), UaAnnot::new(2, 3));
        assert_eq!(out.annotation(&it(&[1, 10])), UaAnnot::zero());
    }

    #[test]
    fn projection_sums_pairs() {
        let q = table("r").project(vec![(col(1), "b")]);
        let out = eval_ua(&db(), &q).unwrap();
        assert_eq!(out.annotation(&it(&[20])), UaAnnot::new(2, 4));
    }

    #[test]
    fn join_multiplies_pairs() {
        let q = table("r").join_on(table("r"), col(1).eq(col(3)));
        let out = eval_ua(&db(), &q).unwrap();
        assert_eq!(out.annotation(&it(&[3, 20, 3, 20])), UaAnnot::new(4, 9));
        assert_eq!(out.annotation(&it(&[2, 20, 3, 20])), UaAnnot::new(0, 3));
    }

    #[test]
    fn difference_unsupported() {
        let q = table("r").difference(table("r"));
        assert!(matches!(eval_ua(&db(), &q), Err(EvalError::Unsupported(_))));
    }

    #[test]
    fn aggregation_has_no_certain_answers() {
        let q = table("r").aggregate(vec![1], vec![AggSpec::new(AggFunc::Sum, col(0), "s")]);
        let out = eval_ua(&db(), &q).unwrap();
        assert_eq!(out.len(), 2);
        for (_, k) in out.rows() {
            assert_eq!(k.certain, 0);
            assert_eq!(k.sg, 1);
        }
        // SGW values match deterministic aggregation
        assert_eq!(out.annotation(&it(&[20, 11,])), UaAnnot::new(0, 1));
    }
}
