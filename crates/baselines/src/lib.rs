//! # audb-baselines
//!
//! Reimplementations of the systems the paper's evaluation (Section 12)
//! compares against. Each is a faithful in-repo realization of the
//! *strategy* of the original system (the originals are external
//! C++/Java/SQL systems); DESIGN.md documents each substitution.
//!
//! * [`det`] — SGQP (query the selected-guess world, ignore uncertainty);
//! * [`libkin`] — certain-answer under-approximation over V-tables;
//! * [`mcdb`] — Monte-Carlo sampling of possible worlds;
//! * [`maybms`] — possible-answer computation by alternative expansion;
//! * [`trio`] — lineage-tracked alternative expansion + per-group
//!   aggregate bounds (not closed under queries);
//! * [`symb`] — exact symbolic-style bounds via exhaustive world
//!   enumeration (Z3 substitute; exponential).

pub mod det;
pub mod libkin;
pub mod maybms;
pub mod mcdb;
pub mod symb;
pub mod trio;

pub use det::run_sgqp;
pub use libkin::{eval_libkin, xrelation_to_vtable, VDatabase};
pub use maybms::{alternative_expansion, run_maybms};
pub use mcdb::{run_mcdb, McdbResult};
pub use symb::{for_each_world, run_symb, SymbBounds};
pub use trio::{eval_trio, trio_aggregate, trio_aggregate_chain, TrioRelation};
