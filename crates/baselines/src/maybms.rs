//! `MayBMS`-style possible-answer computation for `RA+` (Section 12's
//! comparison point, "computing all possible answers without
//! probability computation").
//!
//! Substitution note (see DESIGN.md): instead of MayBMS's U-relational
//! columnar storage we evaluate over the *alternative expansion* of an
//! x-database — every alternative becomes a tuple. For positive
//! relational algebra the result is exactly the set of possible answer
//! tuples (block disjointness can only remove self-join pairings, which
//! over-approximates possibility as MayBMS's lineage pruning also
//! would before confidence computation). The cost scales with the
//! number of alternatives, reproducing the performance shape.

use audb_core::EvalError;
use audb_incomplete::XDb;
use audb_query::{eval_det, Query};
use audb_storage::{Database, Relation};

/// Expand every x-tuple into all of its alternatives.
pub fn alternative_expansion(xdb: &XDb) -> Database {
    let mut db = Database::new();
    for (name, rel) in &xdb.relations {
        let mut rows = Vec::new();
        for xt in &rel.xtuples {
            for (t, _) in &xt.alternatives {
                rows.push((t.clone(), 1u64));
            }
        }
        db.insert(name.clone(), Relation::from_rows(rel.schema.clone(), rows));
    }
    db
}

/// Compute (an over-approximation of) the possible answers of an `RA+`
/// query. Errors on non-monotone operators, which this strategy cannot
/// support.
pub fn run_maybms(xdb: &XDb, q: &Query) -> Result<Relation, EvalError> {
    check_positive(q)?;
    eval_det(&alternative_expansion(xdb), q)
}

fn check_positive(q: &Query) -> Result<(), EvalError> {
    match q {
        Query::Table(_) => Ok(()),
        Query::Select { input, .. } | Query::Project { input, .. } | Query::Distinct { input } => {
            check_positive(input)
        }
        Query::Join { left, right, .. } | Query::Union { left, right } => {
            check_positive(left)?;
            check_positive(right)
        }
        Query::Difference { .. } => Err(EvalError::Unsupported(
            "set difference in possible-answer expansion (non-monotone)".into(),
        )),
        Query::Aggregate { .. } => {
            Err(EvalError::Unsupported("aggregation in possible-answer expansion".into()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use audb_core::{col, lit};
    use audb_incomplete::{XRelation, XTuple};
    use audb_query::table;
    use audb_storage::{Schema, Tuple};

    fn it(vs: &[i64]) -> Tuple {
        vs.iter().copied().collect()
    }

    fn xdb() -> XDb {
        let mut db = XDb::default();
        db.insert(
            "r",
            XRelation::new(
                Schema::named(&["a"]),
                vec![
                    XTuple::certain(it(&[1])),
                    XTuple::new(vec![(it(&[2]), 0.5), (it(&[3]), 0.5)]),
                ],
            ),
        );
        db
    }

    #[test]
    fn all_possible_answers_found() {
        let db = xdb();
        let out = run_maybms(&db, &table("r").select(col(0).geq(lit(2i64)))).unwrap();
        assert_eq!(out.multiplicity(&it(&[2])), 1);
        assert_eq!(out.multiplicity(&it(&[3])), 1);
        assert_eq!(out.multiplicity(&it(&[1])), 0);
    }

    #[test]
    fn covers_every_world_answer() {
        let db = xdb();
        let q = table("r").select(col(0).leq(lit(2i64)));
        let poss = run_maybms(&db, &q).unwrap();
        let inc = db.to_incomplete(64).unwrap();
        let res = inc.eval(&q).unwrap();
        for t in res.all_tuples() {
            assert!(poss.multiplicity(&t) > 0, "{t} possible but missed");
        }
    }

    #[test]
    fn non_monotone_rejected() {
        let db = xdb();
        assert!(run_maybms(&db, &table("r").difference(table("r"))).is_err());
    }
}
