//! `MCDB` — Monte-Carlo database sampling in the spirit of Jampani et
//! al.: evaluate the query over `n` sampled worlds ("tuple bundles"
//! approximated by independent samples, as in the paper's Section 12)
//! and derive statistics from the samples. Supports arbitrary queries
//! but returns estimates, not guarantees: possible tuples can be missed
//! and the derived bounds need not cover all worlds.

use std::collections::BTreeMap;

use audb_core::{EvalError, Value};
use audb_incomplete::XDb;
use audb_query::{eval_det, Query};
use audb_storage::{Relation, Tuple};

/// Result of an MCDB run: one deterministic result per sampled world.
#[derive(Debug, Clone)]
pub struct McdbResult {
    pub samples: Vec<Relation>,
}

/// Run a query over `n` worlds sampled from an x-database.
pub fn run_mcdb(
    xdb: &XDb,
    q: &Query,
    n: usize,
    rng: &mut impl rand::Rng,
) -> Result<McdbResult, EvalError> {
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        let world = xdb.sample_world(rng);
        samples.push(eval_det(&world, q)?);
    }
    Ok(McdbResult { samples })
}

impl McdbResult {
    /// Tuples appearing in at least one sample (the estimate of the
    /// possible answers).
    pub fn seen_tuples(&self) -> BTreeMap<Tuple, usize> {
        let mut out: BTreeMap<Tuple, usize> = BTreeMap::new();
        for s in &self.samples {
            for (t, _) in s.rows() {
                *out.entry(t.clone()).or_insert(0) += 1;
            }
        }
        out
    }

    /// Tuples present in *every* sample (the estimate of the certain
    /// answers — MCDB itself cannot distinguish certain from likely).
    pub fn always_seen(&self) -> Vec<Tuple> {
        self.seen_tuples()
            .into_iter()
            .filter(|(_, c)| *c == self.samples.len())
            .map(|(t, _)| t)
            .collect()
    }

    /// Per-key min/max of a value column across samples: the sampled
    /// estimate of attribute bounds (grouping result rows by the given
    /// key columns). These bounds may *under-cover* the true range.
    pub fn estimated_bounds(
        &self,
        key_cols: &[usize],
        value_col: usize,
    ) -> BTreeMap<Tuple, (Value, Value)> {
        let mut out: BTreeMap<Tuple, (Value, Value)> = BTreeMap::new();
        for s in &self.samples {
            for (t, _) in s.rows() {
                let key = t.project(key_cols);
                let v = t.0[value_col].clone();
                out.entry(key)
                    .and_modify(|(lo, hi)| {
                        *lo = Value::min_of(lo.clone(), v.clone());
                        *hi = Value::max_of(hi.clone(), v.clone());
                    })
                    .or_insert_with(|| (v.clone(), v));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use audb_core::col;
    use audb_incomplete::{XRelation, XTuple};
    use audb_query::{table, AggFunc, AggSpec};
    use audb_storage::Schema;
    use rand::SeedableRng;

    fn it(vs: &[i64]) -> Tuple {
        vs.iter().copied().collect()
    }

    fn xdb() -> XDb {
        let mut db = XDb::default();
        db.insert(
            "r",
            XRelation::new(
                Schema::named(&["g", "v"]),
                vec![
                    XTuple::certain(it(&[1, 10])),
                    XTuple::new(vec![(it(&[1, 20]), 0.5), (it(&[1, 30]), 0.5)]),
                ],
            ),
        );
        db
    }

    #[test]
    fn samples_cover_alternatives() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let q = table("r");
        let res = run_mcdb(&xdb(), &q, 20, &mut rng).unwrap();
        let seen = res.seen_tuples();
        assert!(seen.contains_key(&it(&[1, 10])));
        // with 20 samples both alternatives almost surely appear
        assert!(seen.contains_key(&it(&[1, 20])));
        assert!(seen.contains_key(&it(&[1, 30])));
    }

    #[test]
    fn certain_tuple_always_seen() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let res = run_mcdb(&xdb(), &table("r"), 10, &mut rng).unwrap();
        assert!(res.always_seen().contains(&it(&[1, 10])));
    }

    #[test]
    fn aggregate_bounds_estimated_from_samples() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let q = table("r").aggregate(vec![0], vec![AggSpec::new(AggFunc::Sum, col(1), "s")]);
        let res = run_mcdb(&xdb(), &q, 30, &mut rng).unwrap();
        let bounds = res.estimated_bounds(&[0], 1);
        let (lo, hi) = &bounds[&it(&[1])];
        // true sums are 30 or 40
        assert_eq!(lo, &Value::Int(30));
        assert_eq!(hi, &Value::Int(40));
    }
}
