//! `Trio`-style evaluation (Agrawal et al.): alternative expansion with
//! *lineage* tracking for SPJ queries, plus per-group aggregate bounds.
//!
//! Substitution note (DESIGN.md): we reimplement Trio's evaluation
//! strategy — x-tuple alternatives expanded into tuples carrying lineage
//! (which alternative of which x-tuple they derive from), joins pruning
//! lineage-inconsistent pairs, and certainty decided by enumerating the
//! worlds of the x-tuples appearing in a tuple's lineage. As in the
//! paper's experiments, Trio's aggregation returns per-group bounds and
//! does not support uncertain group-by attributes; its bound
//! representation is not closed under queries (chaining loses
//! information), which `trio_aggregate_chain` reproduces.

use std::collections::BTreeMap;

use audb_core::{EvalError, Value};
use audb_incomplete::{XDb, XRelation};
use audb_query::{AggFunc, Query};
use audb_storage::{Schema, Tuple};

/// Which alternative of which x-tuple a derived tuple depends on.
pub type Lineage = BTreeMap<(String, usize), usize>;

/// A Trio relation: tuples with lineage.
#[derive(Debug, Clone)]
pub struct TrioRelation {
    pub schema: Schema,
    pub rows: Vec<(Tuple, Lineage)>,
}

/// Evaluate an SPJ(+union/distinct) query with lineage tracking.
pub fn eval_trio(xdb: &XDb, q: &Query) -> Result<TrioRelation, EvalError> {
    match q {
        Query::Table(name) => {
            let rel =
                xdb.get(name).ok_or_else(|| EvalError::NotFound(format!("x-relation {name}")))?;
            let mut rows = Vec::new();
            for (xi, xt) in rel.xtuples.iter().enumerate() {
                for (ai, (t, _)) in xt.alternatives.iter().enumerate() {
                    let mut lin = Lineage::new();
                    lin.insert((name.clone(), xi), ai);
                    rows.push((t.clone(), lin));
                }
            }
            Ok(TrioRelation { schema: rel.schema.clone(), rows })
        }
        Query::Select { input, predicate } => {
            let rel = eval_trio(xdb, input)?;
            let mut rows = Vec::new();
            for (t, lin) in rel.rows {
                if predicate.eval_bool(t.values())? {
                    rows.push((t, lin));
                }
            }
            Ok(TrioRelation { schema: rel.schema, rows })
        }
        Query::Project { input, exprs } => {
            let rel = eval_trio(xdb, input)?;
            let schema = Schema::new(exprs.iter().map(|(_, n)| n.clone()).collect());
            let mut rows = Vec::new();
            for (t, lin) in rel.rows {
                let vals: Result<Vec<Value>, _> =
                    exprs.iter().map(|(e, _)| e.eval(t.values())).collect();
                rows.push((Tuple::new(vals?), lin));
            }
            Ok(TrioRelation { schema, rows })
        }
        Query::Join { left, right, predicate } => {
            let l = eval_trio(xdb, left)?;
            let r = eval_trio(xdb, right)?;
            let schema = l.schema.concat(&r.schema);
            let mut rows = Vec::new();
            for (lt, ll) in &l.rows {
                'pair: for (rt, rl) in &r.rows {
                    // lineage consistency: the same x-tuple cannot take
                    // two different alternatives
                    let mut lin = ll.clone();
                    for (k, v) in rl {
                        if let Some(prev) = lin.get(k) {
                            if prev != v {
                                continue 'pair;
                            }
                        }
                        lin.insert(k.clone(), *v);
                    }
                    let t = lt.concat(rt);
                    let keep = match predicate {
                        Some(p) => p.eval_bool(t.values())?,
                        None => true,
                    };
                    if keep {
                        rows.push((t, lin));
                    }
                }
            }
            Ok(TrioRelation { schema, rows })
        }
        Query::Union { left, right } => {
            let mut l = eval_trio(xdb, left)?;
            let r = eval_trio(xdb, right)?;
            l.schema.check_union_compatible(&r.schema)?;
            l.rows.extend(r.rows);
            Ok(l)
        }
        Query::Distinct { input } => {
            let rel = eval_trio(xdb, input)?;
            Ok(rel) // Trio keeps lineage-distinct duplicates
        }
        Query::Difference { .. } | Query::Aggregate { .. } => Err(EvalError::Unsupported(
            "Trio-style lineage evaluation covers SPJ/union; use trio_aggregate".into(),
        )),
    }
}

impl TrioRelation {
    /// Distinct result tuples.
    pub fn distinct_tuples(&self) -> Vec<Tuple> {
        let mut out: Vec<Tuple> = Vec::new();
        for (t, _) in &self.rows {
            if !out.contains(t) {
                out.push(t.clone());
            }
        }
        out
    }

    /// Is a tuple certain? Decided by enumerating the joint worlds of
    /// all x-tuples occurring in the lineages of its derivations
    /// (exponential in that number — Trio's expensive confidence
    /// computation; `None` when above the budget).
    pub fn is_certain(&self, xdb: &XDb, t: &Tuple, budget: u32) -> Option<bool> {
        let derivations: Vec<&Lineage> =
            self.rows.iter().filter(|(t2, _)| t2 == t).map(|(_, l)| l).collect();
        if derivations.is_empty() {
            return Some(false);
        }
        // x-tuples involved
        let mut keys: Vec<(String, usize)> = Vec::new();
        for lin in &derivations {
            for k in lin.keys() {
                if !keys.contains(k) {
                    keys.push(k.clone());
                }
            }
        }
        // options per x-tuple: alternative index, or usize::MAX = absent
        let mut options: Vec<Vec<usize>> = Vec::new();
        let mut total: u64 = 1;
        for (rel, xi) in &keys {
            let x = &xdb.get(rel)?.xtuples[*xi];
            let mut opts: Vec<usize> = (0..x.alternatives.len()).collect();
            if x.is_optional() {
                opts.push(usize::MAX);
            }
            total = total.saturating_mul(opts.len() as u64);
            if total > budget as u64 {
                return None;
            }
            options.push(opts);
        }
        // enumerate assignments; the tuple is certain iff every
        // assignment satisfies at least one derivation
        let mut idx = vec![0usize; keys.len()];
        loop {
            let satisfied = derivations.iter().any(|lin| {
                lin.iter().all(|(k, alt)| {
                    let pos = keys.iter().position(|x| x == k).unwrap();
                    options[pos][idx[pos]] == *alt
                })
            });
            if !satisfied {
                return Some(false);
            }
            // odometer
            let mut i = 0;
            loop {
                if i == keys.len() {
                    return Some(true);
                }
                idx[i] += 1;
                if idx[i] < options[i].len() {
                    break;
                }
                idx[i] = 0;
                i += 1;
            }
        }
    }
}

/// Per-group aggregate bounds à la Trio: only x-tuples whose group-by
/// attribute is *certain* contribute; groups keyed by that value.
/// Returns `(group, lb, ub)` triples.
pub fn trio_aggregate(
    x: &XRelation,
    group_col: Option<usize>,
    func: AggFunc,
    val_col: usize,
) -> Result<Vec<(Option<Value>, Value, Value)>, EvalError> {
    #[derive(Default)]
    struct Acc {
        sum_lo: f64,
        sum_hi: f64,
        cnt_lo: u64,
        cnt_hi: u64,
        min_lo: Option<Value>,
        min_hi: Option<Value>,
        max_lo: Option<Value>,
        max_hi: Option<Value>,
    }
    let mut groups: BTreeMap<Option<Value>, Acc> = BTreeMap::new();
    for xt in &x.xtuples {
        let g = match group_col {
            None => None,
            Some(c) => {
                let first = &xt.alternatives[0].0 .0[c];
                if !xt.alternatives.iter().all(|(t, _)| t.0[c].value_eq(first)) {
                    // uncertain group-by: Trio returns no result for it
                    continue;
                }
                Some(first.clone())
            }
        };
        let vals: Vec<f64> =
            xt.alternatives.iter().map(|(t, _)| t.0[val_col].as_f64().unwrap_or(0.0)).collect();
        let vmin = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let vmax = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let optional = xt.is_optional();
        let acc = groups.entry(g).or_default();
        acc.sum_lo += if optional { vmin.min(0.0) } else { vmin };
        acc.sum_hi += if optional { vmax.max(0.0) } else { vmax };
        acc.cnt_lo += (!optional) as u64;
        acc.cnt_hi += 1;
        let vminv = Value::float(vmin);
        let vmaxv = Value::float(vmax);
        // min bounds: lo = min over all possible values; hi only
        // constrained by tuples that certainly exist
        acc.min_lo = Some(match acc.min_lo.take() {
            None => vminv.clone(),
            Some(m) => Value::min_of(m, vminv.clone()),
        });
        if !optional {
            acc.min_hi = Some(match acc.min_hi.take() {
                None => vmaxv.clone(),
                Some(m) => Value::min_of(m, vmaxv.clone()),
            });
            acc.max_lo = Some(match acc.max_lo.take() {
                None => vminv.clone(),
                Some(m) => Value::max_of(m, vminv.clone()),
            });
        }
        acc.max_hi = Some(match acc.max_hi.take() {
            None => vmaxv,
            Some(m) => Value::max_of(m, vmaxv),
        });
    }
    let mut out = Vec::new();
    for (g, acc) in groups {
        let (lo, hi) = match func {
            AggFunc::Sum => (Value::float(acc.sum_lo), Value::float(acc.sum_hi)),
            AggFunc::Count => (Value::Int(acc.cnt_lo as i64), Value::Int(acc.cnt_hi as i64)),
            AggFunc::Avg => {
                let cl = acc.cnt_lo.max(1) as f64;
                let ch = acc.cnt_hi.max(1) as f64;
                let cands = [acc.sum_lo / cl, acc.sum_lo / ch, acc.sum_hi / cl, acc.sum_hi / ch];
                (
                    Value::float(cands.iter().cloned().fold(f64::INFINITY, f64::min)),
                    Value::float(cands.iter().cloned().fold(f64::NEG_INFINITY, f64::max)),
                )
            }
            AggFunc::Min => (
                acc.min_lo.clone().unwrap_or(Value::Null),
                acc.min_hi.or(acc.min_lo).unwrap_or(Value::MaxVal),
            ),
            AggFunc::Max => (
                acc.max_lo.or(acc.max_hi.clone()).unwrap_or(Value::MinVal),
                acc.max_hi.unwrap_or(Value::Null),
            ),
        };
        out.push((g, lo, hi));
    }
    Ok(out)
}

/// Chainable variant: materialize each group's bounds as an x-tuple with
/// two alternatives `{lb, ub}`. This is lossy — exactly the
/// not-closed-under-queries behaviour the paper observes for Trio.
pub fn trio_aggregate_chain(
    x: &XRelation,
    group_col: Option<usize>,
    func: AggFunc,
    val_col: usize,
) -> Result<XRelation, EvalError> {
    use audb_incomplete::XTuple;
    let bounds = trio_aggregate(x, group_col, func, val_col)?;
    let schema = match group_col {
        Some(_) => Schema::named(&["g", "agg"]),
        None => Schema::named(&["agg"]),
    };
    let mut xtuples = Vec::with_capacity(bounds.len());
    for (g, lo, hi) in bounds {
        let mk = |v: Value| -> Tuple {
            match &g {
                Some(gv) => Tuple::new(vec![gv.clone(), v]),
                None => Tuple::new(vec![v]),
            }
        };
        if lo == hi {
            xtuples.push(XTuple::certain(mk(lo)));
        } else {
            xtuples.push(XTuple::new(vec![(mk(lo), 0.5), (mk(hi), 0.5)]));
        }
    }
    Ok(XRelation::new(schema, xtuples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use audb_core::{col, lit};
    use audb_incomplete::XTuple;
    use audb_query::table;

    fn it(vs: &[i64]) -> Tuple {
        vs.iter().copied().collect()
    }

    fn xdb() -> XDb {
        let mut db = XDb::default();
        db.insert(
            "r",
            XRelation::new(
                Schema::named(&["g", "v"]),
                vec![
                    XTuple::certain(it(&[1, 10])),
                    XTuple::new(vec![(it(&[1, 20]), 0.5), (it(&[1, 30]), 0.5)]),
                    XTuple::new(vec![(it(&[2, 5]), 0.4)]),
                ],
            ),
        );
        db
    }

    #[test]
    fn lineage_tracks_alternatives() {
        let db = xdb();
        let out = eval_trio(&db, &table("r")).unwrap();
        assert_eq!(out.rows.len(), 4);
    }

    #[test]
    fn self_join_prunes_inconsistent_lineage() {
        let db = xdb();
        // join r with itself on g: alternative 20 cannot pair with 30
        let q = table("r").join_on(table("r"), col(0).eq(col(2)));
        let out = eval_trio(&db, &q).unwrap();
        assert!(!out
            .rows
            .iter()
            .any(|(t, _)| t.0[1] == Value::Int(20) && t.0[3] == Value::Int(30)));
        // but 10 pairs with both alternatives
        assert!(out.rows.iter().any(|(t, _)| t.0[1] == Value::Int(10) && t.0[3] == Value::Int(20)));
    }

    #[test]
    fn certainty_via_lineage_worlds() {
        let db = xdb();
        let out = eval_trio(&db, &table("r").project(vec![(col(0), "g")])).unwrap();
        // g=1 derives from a certain x-tuple → certain
        assert_eq!(out.is_certain(&db, &it(&[1]), 1024), Some(true));
        // g=2 derives from an optional x-tuple → not certain
        assert_eq!(out.is_certain(&db, &it(&[2]), 1024), Some(false));
    }

    #[test]
    fn aggregate_bounds_certain_groups_only() {
        let db = xdb();
        let r = db.get("r").unwrap();
        let out = trio_aggregate(r, Some(0), AggFunc::Sum, 1).unwrap();
        // group 1: sum ∈ [30, 40]; group 2: optional tuple → [0, 5]
        let g1 = out.iter().find(|(g, _, _)| g == &Some(Value::Int(1))).unwrap();
        assert_eq!(g1.1, Value::float(30.0));
        assert_eq!(g1.2, Value::float(40.0));
        let g2 = out.iter().find(|(g, _, _)| g == &Some(Value::Int(2))).unwrap();
        assert_eq!(g2.1, Value::float(0.0));
        assert_eq!(g2.2, Value::float(5.0));
    }

    #[test]
    fn uncertain_group_by_dropped() {
        let x = XRelation::new(
            Schema::named(&["g", "v"]),
            vec![XTuple::new(vec![(it(&[1, 7]), 0.5), (it(&[2, 7]), 0.5)])],
        );
        let out = trio_aggregate(&x, Some(0), AggFunc::Sum, 1).unwrap();
        assert!(out.is_empty(), "Trio drops groups with uncertain group-by");
    }

    #[test]
    fn chained_aggregation_is_lossy_but_runs() {
        let db = xdb();
        let r = db.get("r").unwrap();
        let step1 = trio_aggregate_chain(r, Some(0), AggFunc::Sum, 1).unwrap();
        let step2 = trio_aggregate(&step1, None, AggFunc::Sum, 1).unwrap();
        assert_eq!(step2.len(), 1);
        let (_, lo, hi) = &step2[0];
        // bounds of bounds: [30, 40] + [0, 5] → [30, 45]
        assert_eq!(lo, &Value::float(30.0));
        assert_eq!(hi, &Value::float(45.0));
        // selection predicates still run against chained output
        let _ = lit(0i64);
    }
}
