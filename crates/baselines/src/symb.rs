//! `Symb` — symbolic aggregate-bound computation (the paper compares
//! against aggregate semimodule expressions solved with Z3).
//!
//! Substitution note (DESIGN.md): instead of an SMT solver over symbolic
//! expressions we compute *exact* result bounds by exhaustively
//! enumerating possible worlds (the same tight answers, with the same
//! exponential blow-up in the amount of uncertainty that makes the
//! approach "only competitive for low #agg-ops" in Figure 11 —
//! per-world evaluation cost grows with the number of chained
//! aggregation operators).

use std::collections::BTreeMap;

use audb_core::{EvalError, Value};
use audb_incomplete::XDb;
use audb_query::{eval_det, Query};
use audb_storage::{Database, Relation, Tuple};

/// Exact per-key bounds of a query result across all worlds of an
/// x-database: rows keyed by `key_cols`, bounds over `val_col`.
/// Returns `None` when the number of worlds exceeds `max_worlds`.
pub struct SymbBounds {
    /// key → (min value, max value, #worlds containing the key)
    pub per_key: BTreeMap<Tuple, (Value, Value, u64)>,
    pub world_count: u64,
}

pub fn run_symb(
    xdb: &XDb,
    q: &Query,
    key_cols: &[usize],
    val_col: usize,
    max_worlds: u64,
) -> Result<Option<SymbBounds>, EvalError> {
    let mut per_key: BTreeMap<Tuple, (Value, Value, u64)> = BTreeMap::new();
    let mut world_count = 0u64;
    let complete = for_each_world(xdb, max_worlds, |world| {
        world_count += 1;
        let res = eval_det(world, q)?;
        for (t, _) in res.rows() {
            let key = t.project(key_cols);
            let v = t.0[val_col].clone();
            per_key
                .entry(key)
                .and_modify(|(lo, hi, c)| {
                    *lo = Value::min_of(lo.clone(), v.clone());
                    *hi = Value::max_of(hi.clone(), v.clone());
                    *c += 1;
                })
                .or_insert_with(|| (v.clone(), v, 1));
        }
        Ok(())
    })?;
    if !complete {
        return Ok(None);
    }
    Ok(Some(SymbBounds { per_key, world_count }))
}

/// Enumerate the worlds of an x-database one at a time (odometer over
/// the per-x-tuple choices), without materializing the set. Returns
/// `false` if the enumeration was cut off by `max_worlds`.
pub fn for_each_world(
    xdb: &XDb,
    max_worlds: u64,
    mut f: impl FnMut(&Database) -> Result<(), EvalError>,
) -> Result<bool, EvalError> {
    // flatten choices: (relation index, xtuple index) → #options
    struct Slot {
        rel: usize,
        xt: usize,
        options: usize, // alternatives (+1 when optional, encoded as last)
        optional: bool,
    }
    let mut slots = Vec::new();
    let mut total: u64 = 1;
    for (ri, (_, rel)) in xdb.relations.iter().enumerate() {
        for (xi, xt) in rel.xtuples.iter().enumerate() {
            let opts = xt.alternatives.len() + xt.is_optional() as usize;
            if opts > 1 {
                total = total.saturating_mul(opts as u64);
                if total > max_worlds {
                    return Ok(false);
                }
                slots.push(Slot { rel: ri, xt: xi, options: opts, optional: xt.is_optional() });
            }
        }
    }

    let mut idx = vec![0usize; slots.len()];
    loop {
        // build the world for the current odometer state
        let mut db = Database::new();
        for (ri, (name, rel)) in xdb.relations.iter().enumerate() {
            let mut rows = Vec::new();
            for (xi, xt) in rel.xtuples.iter().enumerate() {
                let choice = match slots.iter().position(|s| s.rel == ri && s.xt == xi) {
                    Some(si) => {
                        let c = idx[si];
                        if slots[si].optional && c == slots[si].options - 1 {
                            None // absent
                        } else {
                            Some(c)
                        }
                    }
                    None => {
                        if xt.is_optional() {
                            None
                        } else {
                            Some(0)
                        }
                    }
                };
                if let Some(c) = choice {
                    rows.push((xt.alternatives[c].0.clone(), 1u64));
                }
            }
            db.insert(name.clone(), Relation::from_rows(rel.schema.clone(), rows));
        }
        f(&db)?;

        // advance the odometer
        let mut i = 0;
        loop {
            if i == slots.len() {
                return Ok(true);
            }
            idx[i] += 1;
            if idx[i] < slots[i].options {
                break;
            }
            idx[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use audb_core::col;
    use audb_incomplete::{XRelation, XTuple};
    use audb_query::{table, AggFunc, AggSpec};
    use audb_storage::Schema;

    fn it(vs: &[i64]) -> Tuple {
        vs.iter().copied().collect()
    }

    fn xdb() -> XDb {
        let mut db = XDb::default();
        db.insert(
            "r",
            XRelation::new(
                Schema::named(&["g", "v"]),
                vec![
                    XTuple::certain(it(&[1, 10])),
                    XTuple::new(vec![(it(&[1, 20]), 0.5), (it(&[1, 30]), 0.5)]),
                    XTuple::new(vec![(it(&[1, 5]), 0.4)]),
                ],
            ),
        );
        db
    }

    #[test]
    fn world_enumeration_count() {
        let db = xdb();
        let mut count = 0;
        let done = for_each_world(&db, 100, |_| {
            count += 1;
            Ok(())
        })
        .unwrap();
        assert!(done);
        assert_eq!(count, 2 * 2); // 2 alternatives × (present/absent)
    }

    #[test]
    fn exact_aggregate_bounds() {
        let db = xdb();
        let q = table("r").aggregate(vec![0], vec![AggSpec::new(AggFunc::Sum, col(1), "s")]);
        let b = run_symb(&db, &q, &[0], 1, 1000).unwrap().unwrap();
        let (lo, hi, c) = &b.per_key[&it(&[1])];
        // sums: 10+20=30, 10+30=40, +5 optionally → {30,35,40,45}
        assert_eq!(lo, &Value::Int(30));
        assert_eq!(hi, &Value::Int(45));
        assert_eq!(*c, 4);
    }

    #[test]
    fn budget_cutoff() {
        let db = xdb();
        let q = table("r");
        assert!(run_symb(&db, &q, &[0], 1, 2).unwrap().is_none());
    }

    /// Symb bounds are tight: the AU-DB bounds always contain them.
    #[test]
    fn symb_is_tight_reference() {
        use audb_query::{eval_au, AuConfig};
        let db = xdb();
        let q = table("r").aggregate(vec![0], vec![AggSpec::new(AggFunc::Sum, col(1), "s")]);
        let exact = run_symb(&db, &q, &[0], 1, 1000).unwrap().unwrap();
        let au = eval_au(&db.to_au(), &q, &AuConfig::precise()).unwrap();
        for (key, (lo, hi, _)) in &exact.per_key {
            let row = au
                .rows()
                .iter()
                .find(|(t, _)| t.project(&[0]).sg() == *key)
                .expect("group present");
            let bounds = &row.0 .0[1];
            assert!(bounds.lb <= *lo && *hi <= bounds.ub);
        }
    }
}
