//! `Libkin` — certain-answer under-approximation for relational algebra
//! over Codd/V-tables with labeled nulls (Guagliardo & Libkin; the
//! paper's Section 12 baseline).
//!
//! Evaluation is symbolic over rows containing labeled nulls:
//! a tuple survives a selection only if the predicate is *certainly*
//! true under every instantiation of the nulls; joins match only
//! certainly-equal cells (a labeled null is certainly equal to itself);
//! difference removes left tuples that are *possibly* equal to some
//! right tuple. The result under-approximates the certain answers.
//! Aggregation is unsupported (as in the paper's evaluation, where
//! Libkin only runs the SPJ workloads).

use audb_core::{EvalError, Expr, Value};
use audb_incomplete::vtable::VCell;
use audb_incomplete::{VTable, XRelation};
use audb_query::Query;
use audb_storage::Schema;

/// A database of V-relations for the Libkin evaluator.
#[derive(Debug, Clone, Default)]
pub struct VDatabase {
    pub relations: Vec<(String, VTable)>,
}

impl VDatabase {
    pub fn insert(&mut self, name: impl Into<String>, rel: VTable) {
        self.relations.push((name.into(), rel));
    }

    pub fn get(&self, name: &str) -> Result<&VTable, EvalError> {
        self.relations
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| r)
            .ok_or_else(|| EvalError::NotFound(format!("V-table {name}")))
    }
}

/// Convert an x-relation into a V-table: attributes on which the
/// alternatives disagree become (independent) labeled nulls — the setup
/// of Section 12.1 ("a database with labeled nulls for uncertain
/// attributes"). Optionality is dropped (V-tables cannot express it).
pub fn xrelation_to_vtable(x: &XRelation, null_domain: Vec<Value>) -> VTable {
    let mut vt = VTable::new(x.schema.clone(), null_domain);
    for xt in &x.xtuples {
        let n = x.schema.arity();
        let mut cells = Vec::with_capacity(n);
        for i in 0..n {
            let first = &xt.alternatives[0].0 .0[i];
            if xt.alternatives.iter().all(|(t, _)| &t.0[i] == first) {
                cells.push(VCell::Const(first.clone()));
            } else {
                let v = vt.fresh_var();
                cells.push(VCell::Var(v));
            }
        }
        vt.add_row(cells);
    }
    vt
}

/// Three-valued truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TV {
    True,
    False,
    Unknown,
}

impl TV {
    fn and(self, other: TV) -> TV {
        match (self, other) {
            (TV::False, _) | (_, TV::False) => TV::False,
            (TV::True, TV::True) => TV::True,
            _ => TV::Unknown,
        }
    }
    fn or(self, other: TV) -> TV {
        match (self, other) {
            (TV::True, _) | (_, TV::True) => TV::True,
            (TV::False, TV::False) => TV::False,
            _ => TV::Unknown,
        }
    }
    fn not(self) -> TV {
        match self {
            TV::True => TV::False,
            TV::False => TV::True,
            TV::Unknown => TV::Unknown,
        }
    }
}

/// A symbolic row: cells with labeled nulls.
type VRow = Vec<VCell>;

fn cell_eq(a: &VCell, b: &VCell) -> TV {
    match (a, b) {
        (VCell::Const(x), VCell::Const(y)) => {
            if x.value_eq(y) {
                TV::True
            } else {
                TV::False
            }
        }
        (VCell::Var(x), VCell::Var(y)) if x == y => TV::True,
        _ => TV::Unknown,
    }
}

fn cell_cmp_leq(a: &VCell, b: &VCell) -> TV {
    match (a, b) {
        (VCell::Const(x), VCell::Const(y)) => {
            if x <= y || x.value_eq(y) {
                TV::True
            } else {
                TV::False
            }
        }
        (VCell::Var(x), VCell::Var(y)) if x == y => TV::True,
        _ => TV::Unknown,
    }
}

fn eval_3vl(e: &Expr, row: &VRow) -> Result<TV, EvalError> {
    Ok(match e {
        Expr::Const(Value::Bool(b)) => {
            if *b {
                TV::True
            } else {
                TV::False
            }
        }
        Expr::And(a, b) => eval_3vl(a, row)?.and(eval_3vl(b, row)?),
        Expr::Or(a, b) => eval_3vl(a, row)?.or(eval_3vl(b, row)?),
        Expr::Not(a) => eval_3vl(a, row)?.not(),
        Expr::Eq(a, b) => cell_eq(&eval_cell(a, row)?, &eval_cell(b, row)?),
        Expr::Neq(a, b) => cell_eq(&eval_cell(a, row)?, &eval_cell(b, row)?).not(),
        Expr::Leq(a, b) => cell_cmp_leq(&eval_cell(a, row)?, &eval_cell(b, row)?),
        Expr::Geq(a, b) => cell_cmp_leq(&eval_cell(b, row)?, &eval_cell(a, row)?),
        Expr::Lt(a, b) => cell_cmp_leq(&eval_cell(b, row)?, &eval_cell(a, row)?).not(),
        Expr::Gt(a, b) => cell_cmp_leq(&eval_cell(a, row)?, &eval_cell(b, row)?).not(),
        _ => TV::Unknown,
    })
}

/// Evaluate a scalar expression to a cell; any arithmetic over a null
/// yields an (unknown) fresh-null marker, conservatively treated as
/// never certainly equal to anything.
fn eval_cell(e: &Expr, row: &VRow) -> Result<VCell, EvalError> {
    Ok(match e {
        Expr::Col(i) => row.get(*i).cloned().ok_or(EvalError::UnknownColumn(*i))?,
        Expr::Const(v) => VCell::Const(v.clone()),
        Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
            let (x, y) = (eval_cell(a, row)?, eval_cell(b, row)?);
            match (x, y) {
                (VCell::Const(x), VCell::Const(y)) => {
                    let v = match e {
                        Expr::Add(..) => x.add(&y)?,
                        Expr::Sub(..) => x.sub(&y)?,
                        Expr::Mul(..) => x.mul(&y)?,
                        _ => x.div(&y)?,
                    };
                    VCell::Const(v)
                }
                // arithmetic over a null: an unknown value
                _ => VCell::Var(usize::MAX),
            }
        }
        Expr::Neg(a) => match eval_cell(a, row)? {
            VCell::Const(v) => VCell::Const(v.neg()?),
            _ => VCell::Var(usize::MAX),
        },
        _ => VCell::Var(usize::MAX),
    })
}

/// Evaluate a query, producing an under-approximation of the certain
/// answers (rows may contain labeled nulls — "certain answers with
/// nulls").
pub fn eval_libkin(db: &VDatabase, q: &Query) -> Result<(Schema, Vec<VRow>), EvalError> {
    match q {
        Query::Table(name) => {
            let vt = db.get(name)?;
            Ok((vt.schema.clone(), vt.rows.clone()))
        }
        Query::Select { input, predicate } => {
            let (schema, rows) = eval_libkin(db, input)?;
            let mut out = Vec::new();
            for r in rows {
                if eval_3vl(predicate, &r)? == TV::True {
                    out.push(r);
                }
            }
            Ok((schema, out))
        }
        Query::Project { input, exprs } => {
            let (_, rows) = eval_libkin(db, input)?;
            let schema = Schema::new(exprs.iter().map(|(_, n)| n.clone()).collect());
            let mut out = Vec::new();
            for r in rows {
                let cells: Result<Vec<VCell>, _> =
                    exprs.iter().map(|(e, _)| eval_cell(e, &r)).collect();
                out.push(cells?);
            }
            Ok((schema, out))
        }
        Query::Join { left, right, predicate } => {
            let (ls, lrows) = eval_libkin(db, left)?;
            let (rs, rrows) = eval_libkin(db, right)?;
            let schema = ls.concat(&rs);
            let mut out = Vec::new();
            for l in &lrows {
                for r in &rrows {
                    let mut row = l.clone();
                    row.extend(r.iter().cloned());
                    let keep = match predicate {
                        Some(p) => eval_3vl(p, &row)? == TV::True,
                        None => true,
                    };
                    if keep {
                        out.push(row);
                    }
                }
            }
            Ok((schema, out))
        }
        Query::Union { left, right } => {
            let (ls, mut lrows) = eval_libkin(db, left)?;
            let (rs, rrows) = eval_libkin(db, right)?;
            ls.check_union_compatible(&rs)?;
            lrows.extend(rrows);
            Ok((ls, lrows))
        }
        Query::Difference { left, right } => {
            let (ls, lrows) = eval_libkin(db, left)?;
            let (_, rrows) = eval_libkin(db, right)?;
            // keep left rows that are possibly-equal to no right row
            let possibly_eq =
                |a: &VRow, b: &VRow| a.iter().zip(b).all(|(x, y)| cell_eq(x, y) != TV::False);
            let out: Vec<VRow> =
                lrows.into_iter().filter(|l| !rrows.iter().any(|r| possibly_eq(l, r))).collect();
            Ok((ls, out))
        }
        Query::Distinct { input } => {
            let (schema, rows) = eval_libkin(db, input)?;
            let mut out: Vec<VRow> = Vec::new();
            for r in rows {
                if !out.contains(&r) {
                    out.push(r);
                }
            }
            Ok((schema, out))
        }
        Query::Aggregate { .. } => Err(EvalError::Unsupported(
            "aggregation over certain-answer under-approximation (Libkin baseline is SPJ-only)"
                .into(),
        )),
    }
}

/// Count the fully certain (null-free) rows — the baseline's certain
/// answers in the strict sense.
pub fn certain_rows(rows: &[VRow]) -> usize {
    rows.iter().filter(|r| r.iter().all(|c| matches!(c, VCell::Const(_)))).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use audb_core::{col, lit};
    use audb_query::table;

    fn vdb() -> VDatabase {
        let mut vt = VTable::new(Schema::named(&["a", "b"]), vec![Value::Int(0), Value::Int(9)]);
        let x = vt.fresh_var();
        vt.add_row(vec![VCell::Const(Value::Int(1)), VCell::Const(Value::Int(10))]);
        vt.add_row(vec![VCell::Const(Value::Int(2)), VCell::Var(x)]);
        let mut db = VDatabase::default();
        db.insert("r", vt);
        db
    }

    #[test]
    fn selection_keeps_only_certainly_true() {
        let db = vdb();
        let (_, rows) = eval_libkin(&db, &table("r").select(col(1).geq(lit(5i64)))).unwrap();
        // the null row may be below 5 → dropped
        assert_eq!(rows.len(), 1);
        assert_eq!(certain_rows(&rows), 1);
    }

    #[test]
    fn same_null_joins_itself() {
        let db = vdb();
        let q = table("r").join_on(table("r"), col(1).eq(col(3)));
        let (_, rows) = eval_libkin(&db, &q).unwrap();
        // (1,10)⋈(1,10) and (2,x)⋈(2,x): same labeled null matches itself
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn difference_removes_possible_matches() {
        let db = vdb();
        let q = table("r")
            .project(vec![(col(0), "a")])
            .difference(table("r").select(col(1).geq(lit(100i64))).project(vec![(col(0), "a")]));
        let (_, rows) = eval_libkin(&db, &q).unwrap();
        assert_eq!(rows.len(), 2); // nothing certainly ≥ 100 on the right
    }

    #[test]
    fn aggregation_unsupported() {
        let db = vdb();
        let q = table("r").aggregate(vec![], vec![audb_query::AggSpec::count("c")]);
        assert!(eval_libkin(&db, &q).is_err());
    }

    /// The under-approximation property: every returned null-free row is
    /// a certain answer of the possible-worlds semantics.
    #[test]
    fn under_approximates_certain_answers() {
        let mut vt = VTable::new(Schema::named(&["a"]), vec![Value::Int(1), Value::Int(2)]);
        let x = vt.fresh_var();
        vt.add_row(vec![VCell::Const(Value::Int(1))]);
        vt.add_row(vec![VCell::Var(x)]);
        let mut db = VDatabase::default();
        db.insert("r", vt.clone());

        let q = table("r").select(col(0).leq(lit(1i64)));
        let (_, rows) = eval_libkin(&db, &q).unwrap();
        let inc = vt.to_incomplete("r", 16).unwrap();
        let certain = inc.eval(&q).unwrap().certain_tuples();
        for r in &rows {
            if let [VCell::Const(v)] = r.as_slice() {
                let t: audb_storage::Tuple = [v.clone()].into_iter().collect();
                assert!(certain.contains(&t));
            }
        }
    }
}
