//! `Det` — selected-guess query processing (SGQP, Section 1): resolve
//! all uncertainty up front by picking one world, then query it with the
//! plain deterministic engine. Fast, but silently discards all
//! uncertainty — the practice AU-DBs generalize.

use audb_core::EvalError;
use audb_query::{eval_det, Query};
use audb_storage::{Database, Relation};

/// Run a query under SGQP over the selected-guess world.
pub fn run_sgqp(sg_world: &Database, q: &Query) -> Result<Relation, EvalError> {
    eval_det(sg_world, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use audb_core::{col, lit};
    use audb_query::table;
    use audb_storage::{Schema, Tuple};

    #[test]
    fn sgqp_is_plain_evaluation() {
        let mut db = Database::new();
        db.insert(
            "r",
            Relation::from_tuples(
                Schema::named(&["a"]),
                vec![[1i64].into_iter().collect(), [2i64].into_iter().collect()],
            ),
        );
        let out = run_sgqp(&db, &table("r").select(col(0).gt(lit(1i64)))).unwrap();
        assert_eq!(out.total_count(), 1);
        let t: Tuple = [2i64].into_iter().collect();
        assert_eq!(out.multiplicity(&t), 1);
    }
}
