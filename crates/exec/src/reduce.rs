//! The sharded-reduce driver: parallel hash-merge + sort.
//!
//! Relation normalization (merge duplicate tuples, drop zeros, sort
//! canonically) is a hash-merge over the *whole* row list — once the
//! row-producing operators run on the pool, it is the remaining
//! single-threaded tail of every query. [`Executor::hash_merge_sorted`]
//! decomposes it into the same morsel/ordered-merge shape as
//! [`Executor::run`]:
//!
//! 1. **scatter** (parallel, one job per input morsel): route each row
//!    to one of `S` shards by key hash — equal keys always land in the
//!    same shard, and within a shard rows keep their original relative
//!    order (morsels are contiguous and collected in morsel order);
//! 2. **reduce** (parallel, one job per shard): hash-merge each shard's
//!    rows and sort the survivors by key;
//! 3. **merge** (sequential, `O(n · S)` with `S ≤ workers`): k-way-merge
//!    the sorted shards into one globally sorted list.
//!
//! ## Determinism
//!
//! The output is **byte-identical** to the sequential hash-merge + sort
//! for any worker count, shard count, and hash function:
//!
//! * the *set* of `(key, combined value)` pairs does not depend on the
//!   sharding — equal keys share a shard, and each key's occurrences
//!   are combined in their original input order (so `combine` need not
//!   even be commutative, only identical to the sequential fold);
//! * the *order* is canonical — shards hold disjoint key sets, so the
//!   k-way merge of the per-shard sorted runs is the unique globally
//!   sorted sequence, the same one the sequential path produces.
//!
//! A worker count of 1 (or an input below the morsel floor) takes the
//! inline path, which *is* the sequential algorithm (run as a single
//! pool morsel, so panic containment and cancellation apply there too).
//!
//! ## Governance
//!
//! The whole input is charged to the executor's budget up front (site
//! `"sharded-reduce"`): normalization buffers every row it is handed,
//! so the scatter is the last place an over-budget intermediate can be
//! stopped before it is copied shard-wise. Both phases run on
//! [`Executor::run`], inheriting its cancellation checkpoints and
//! panic containment; claim mutexes are accessed poison-recovering, so
//! a contained panic in one job cannot cascade into lock panics in
//! siblings.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use audb_core::obs::{Counter, Site};
use audb_core::ExecError;

use crate::partition::Partitioner;
use crate::pool::Executor;

/// A work unit claimed exactly once by a pool job: the morsel chunks of
/// the scatter phase and the bucket lists of the reduce phase.
type Claim<V> = Mutex<Option<V>>;

/// One row bucket per shard, as produced by a scatter job.
type Buckets<T, K> = Vec<Vec<(T, K)>>;

/// Take a claimed work unit out of its slot, recovering from a poisoned
/// lock (the panic that poisoned it was already contained and converted
/// to a structured error by the pool).
fn claim<V>(slot: &Claim<V>) -> Option<V> {
    slot.lock().unwrap_or_else(PoisonError::into_inner).take()
}

impl Executor {
    /// Merge rows with equal keys (combining their values), drop rows
    /// rejected by `keep` (checked on *input* values, mirroring the
    /// sequential normalize), and return the survivors sorted by key.
    ///
    /// `combine(acc, v)` folds `v` into the accumulated value for a key;
    /// it is applied in the rows' original order, so any fold that the
    /// sequential hash-merge supports is safe here.
    ///
    /// Fallible since the runtime gained fault containment: a panic in
    /// `keep`/`combine` surfaces as [`ExecError::WorkerPanic`], a
    /// tripped token as `Cancelled`/`DeadlineExceeded`, and the up-front
    /// input charge as [`ExecError::BudgetExceeded`].
    pub fn hash_merge_sorted<T, K>(
        &self,
        rows: Vec<(T, K)>,
        keep: impl Fn(&K) -> bool + Sync,
        combine: impl Fn(&mut K, K) + Sync,
    ) -> Result<Vec<(T, K)>, ExecError>
    where
        T: Hash + Eq + Ord + Send,
        K: Send,
    {
        // The trivial sort key compares nothing, so every comparison
        // falls through to the full key order.
        self.hash_merge_sorted_by_key(rows, keep, combine, |_| ())
    }

    /// [`Executor::hash_merge_sorted`] with an order-refining sort
    /// accelerator: `sort_key(t)` must be *monotone* in `T`'s order
    /// (`sort_key(a) < sort_key(b)` ⇒ `a < b`), and both the per-shard
    /// sorts and the k-way merge then compare `(sort_key, row)` — a
    /// cheap (typically memcmp) fast path in front of the exact
    /// comparator, producing the identical canonical order. The
    /// columnar layout keys relation normalization on packed column
    /// bytes through this entry point.
    pub fn hash_merge_sorted_by_key<T, K, B>(
        &self,
        rows: Vec<(T, K)>,
        keep: impl Fn(&K) -> bool + Sync,
        combine: impl Fn(&mut K, K) + Sync,
        sort_key: impl Fn(&T) -> B + Sync,
    ) -> Result<Vec<(T, K)>, ExecError>
    where
        T: Hash + Eq + Ord + Send,
        K: Send,
        B: Ord + Send,
    {
        self.charge(
            "sharded-reduce",
            rows.len() as u64,
            (rows.len() * std::mem::size_of::<(T, K)>()) as u64,
        )?;
        let metrics = self.metrics().clone();
        metrics.add(Counter::NormalizeRuns, 1);
        metrics.add(Counter::NormalizeRowsIn, rows.len() as u64);

        let morsels = self.partitioner().morsels(rows.len(), self.workers());
        if self.workers() <= 1 || morsels.len() <= 1 {
            // Run the sequential algorithm as a single pool morsel so it
            // shares the containment/cancellation path of the parallel
            // shape.
            let slot: Claim<Vec<(T, K)>> = Mutex::new(Some(rows));
            let out: Vec<(T, K)> = self.run(1, |_, out| {
                let rows = claim(&slot).unwrap_or_default();
                out.append(&mut hash_merge_sorted_seq(rows, &keep, &combine, &sort_key));
                Ok::<(), ExecError>(())
            })?;
            metrics.add(Counter::NormalizeRowsOut, out.len() as u64);
            return Ok(out);
        }

        // The scatter/reduce jobs are batches themselves (one per morsel
        // or shard), so the meta-executor partitions them one-to-one
        // instead of applying the row-level morsel floor again.
        let meta = self.clone().with_partitioner(Partitioner {
            min_morsel: 1,
            morsels_per_worker: 1,
            min_rows_per_worker: 0,
        });
        let shards = self.workers().min(morsels.len());

        // Split the owned row list at the morsel boundaries so scatter
        // jobs can take ownership of their chunk.
        let mut chunks: Vec<Claim<Vec<(T, K)>>> = Vec::with_capacity(morsels.len());
        {
            let mut rest = rows;
            for m in morsels.iter().rev() {
                chunks.push(Mutex::new(Some(rest.split_off(m.start))));
            }
            chunks.reverse();
        }

        // Phase 1: scatter each chunk into per-shard buckets. One
        // hasher instance keys the whole call so every occurrence of a
        // key agrees on its shard.
        let phase_started = metrics.is_enabled().then(Instant::now);
        let hasher = RandomState::new();
        let tables: Vec<Buckets<T, K>> = meta.run(chunks.len(), |range, out| {
            for ci in range {
                let chunk = claim(&chunks[ci]).unwrap_or_default();
                let mut buckets: Buckets<T, K> = (0..shards).map(|_| Vec::new()).collect();
                for (t, k) in chunk {
                    if keep(&k) {
                        let s = (hasher.hash_one(&t) % shards as u64) as usize;
                        buckets[s].push((t, k));
                    }
                }
                out.push(buckets);
            }
            Ok::<(), ExecError>(())
        })?;
        if let Some(t) = phase_started {
            metrics.record_ns(Site::ReduceScatter, t.elapsed().as_nanos() as u64);
        }

        // Gather: shard `s` receives its buckets in morsel order, so a
        // key's occurrences stay in original input order.
        let mut shard_parts: Vec<Buckets<T, K>> =
            (0..shards).map(|_| Vec::with_capacity(tables.len())).collect();
        for table in tables {
            for (s, bucket) in table.into_iter().enumerate() {
                if !bucket.is_empty() {
                    shard_parts[s].push(bucket);
                }
            }
        }

        // Phase 2: hash-merge + sort each shard independently. Rows are
        // decorated with their sort key for the shard sort AND the
        // k-way merge, then stripped at the end.
        let phase_started = metrics.is_enabled().then(Instant::now);
        let shard_slots: Vec<Claim<Buckets<T, K>>> =
            shard_parts.into_iter().map(|p| Mutex::new(Some(p))).collect();
        let sorted: Vec<Vec<(B, (T, K))>> = meta.run(shards, |range, out| {
            for s in range {
                let parts = claim(&shard_slots[s]).unwrap_or_default();
                let cap: usize = parts.iter().map(Vec::len).sum();
                let mut map: HashMap<T, K> = HashMap::with_capacity(cap);
                for part in parts {
                    for (t, k) in part {
                        match map.entry(t) {
                            Entry::Occupied(mut e) => combine(e.get_mut(), k),
                            Entry::Vacant(e) => {
                                e.insert(k);
                            }
                        }
                    }
                }
                let mut rows: Vec<(B, (T, K))> =
                    map.into_iter().map(|(t, k)| (sort_key(&t), (t, k))).collect();
                rows.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1 .0.cmp(&b.1 .0)));
                out.push(rows);
            }
            Ok::<(), ExecError>(())
        })?;
        if let Some(t) = phase_started {
            metrics.record_ns(Site::ReduceMergeSort, t.elapsed().as_nanos() as u64);
        }

        // Phase 3: k-way merge of disjoint sorted runs.
        let phase_started = metrics.is_enabled().then(Instant::now);
        let out = kway_merge(sorted);
        if let Some(t) = phase_started {
            metrics.record_ns(Site::ReduceKway, t.elapsed().as_nanos() as u64);
        }
        metrics.add(Counter::NormalizeRowsOut, out.len() as u64);
        Ok(out)
    }
}

/// The sequential algorithm — exactly the pre-runtime normalize, with
/// the same sort-key decoration as the parallel shards.
fn hash_merge_sorted_seq<T, K, B>(
    rows: Vec<(T, K)>,
    keep: impl Fn(&K) -> bool,
    combine: impl Fn(&mut K, K),
    sort_key: impl Fn(&T) -> B,
) -> Vec<(T, K)>
where
    T: Hash + Eq + Ord,
    B: Ord,
{
    let mut map: HashMap<T, K> = HashMap::with_capacity(rows.len());
    for (t, k) in rows {
        if keep(&k) {
            match map.entry(t) {
                Entry::Occupied(mut e) => combine(e.get_mut(), k),
                Entry::Vacant(e) => {
                    e.insert(k);
                }
            }
        }
    }
    let mut out: Vec<(B, (T, K))> = map.into_iter().map(|(t, k)| (sort_key(&t), (t, k))).collect();
    out.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1 .0.cmp(&b.1 .0)));
    out.into_iter().map(|(_, row)| row).collect()
}

/// Merge key-decorated sorted runs with pairwise-distinct keys into one
/// sorted list, stripping the decoration.
fn kway_merge<T: Ord, K, B: Ord>(sorted: Vec<Vec<(B, (T, K))>>) -> Vec<(T, K)> {
    let total: usize = sorted.iter().map(Vec::len).sum();
    let mut iters: Vec<std::vec::IntoIter<(B, (T, K))>> =
        sorted.into_iter().map(Vec::into_iter).collect();
    let mut heads: Vec<Option<(B, (T, K))>> = iters.iter_mut().map(Iterator::next).collect();
    let mut out = Vec::with_capacity(total);
    loop {
        // index of the smallest live head (stable towards later runs,
        // irrelevant for correctness: keys are pairwise distinct)
        let mut best: Option<usize> = None;
        for (i, h) in heads.iter().enumerate() {
            let Some((kb, (t, _))) = h else { continue };
            best = match best {
                Some(b) if matches!(&heads[b], Some((bk, (bt, _))) if (bk, bt) < (kb, t)) => {
                    Some(b)
                }
                _ => Some(i),
            };
        }
        let Some(b) = best else { break };
        if let Some((_, row)) = heads[b].take() {
            out.push(row);
        }
        heads[b] = iters[b].next();
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    /// Rows with duplicate keys spread across the space, some zeros.
    fn rows(n: usize) -> Vec<(u64, u64)> {
        (0..n).map(|i| ((i % 97) as u64, (i % 5) as u64)).collect()
    }

    fn merged(exec: &Executor, n: usize) -> Vec<(u64, u64)> {
        exec.hash_merge_sorted(rows(n), |k| *k > 0, |acc, k| *acc += k).unwrap()
    }

    #[test]
    fn parallel_identical_to_sequential() {
        let seq = merged(&Executor::sequential(), 10_000);
        for w in [2usize, 3, 4, 7, 16] {
            assert_eq!(merged(&Executor::new(w), 10_000), seq, "workers = {w}");
        }
    }

    #[test]
    fn tiny_inputs_and_forced_partitions() {
        let forced = Executor::new(4).with_partitioner(Partitioner {
            min_morsel: 1,
            morsels_per_worker: 5,
            min_rows_per_worker: 0,
        });
        for n in [0usize, 1, 2, 7, 130] {
            let seq = merged(&Executor::sequential(), n);
            assert_eq!(merged(&forced, n), seq, "n = {n}");
        }
    }

    #[test]
    fn combine_order_is_original_order() {
        // fold that is NOT commutative: keeps (first, last) seen
        let input: Vec<(u64, (u64, u64))> = (0..600u64).map(|i| (i % 7, (i, i))).collect();
        let fold = |acc: &mut (u64, u64), v: (u64, u64)| acc.1 = v.1;
        let seq = Executor::sequential().hash_merge_sorted(input.clone(), |_| true, fold).unwrap();
        let forced = Executor::new(4).with_partitioner(Partitioner {
            min_morsel: 1,
            morsels_per_worker: 3,
            min_rows_per_worker: 0,
        });
        assert_eq!(forced.hash_merge_sorted(input, |_| true, fold).unwrap(), seq);
    }

    #[test]
    fn keep_filters_before_merge() {
        let input = vec![(1u64, 0u64), (1, 2), (2, 0), (3, 1)];
        let out = Executor::new(4)
            .with_partitioner(Partitioner {
                min_morsel: 1,
                morsels_per_worker: 2,
                min_rows_per_worker: 0,
            })
            .hash_merge_sorted(input, |k| *k > 0, |acc, k| *acc += k)
            .unwrap();
        assert_eq!(out, vec![(1, 2), (3, 1)]);
    }

    /// A monotone sort key changes nothing: keyed output is
    /// byte-identical to the plain path at any worker count.
    #[test]
    fn keyed_sort_identical_to_plain() {
        let seq = merged(&Executor::sequential(), 5_000);
        let forced = Executor::new(4).with_partitioner(Partitioner {
            min_morsel: 1,
            morsels_per_worker: 3,
            min_rows_per_worker: 0,
        });
        for exec in [Executor::sequential(), forced] {
            let out = exec
                .hash_merge_sorted_by_key(
                    rows(5_000),
                    |k| *k > 0,
                    |acc, k| *acc += k,
                    |t| t.to_be_bytes(),
                )
                .unwrap();
            assert_eq!(out, seq);
        }
    }

    /// A panic in `combine` is contained as a structured error and the
    /// executor keeps working — on both the inline and parallel paths.
    #[test]
    fn combine_panic_is_contained() {
        let bomb = |_acc: &mut u64, _k: u64| panic!("combine bomb");
        for exec in [
            Executor::sequential(),
            Executor::new(4).with_partitioner(Partitioner {
                min_morsel: 1,
                morsels_per_worker: 3,
                min_rows_per_worker: 0,
            }),
        ] {
            let err = exec.hash_merge_sorted(rows(500), |_| true, bomb).unwrap_err();
            assert!(matches!(err, ExecError::WorkerPanic { .. }), "got: {err:?}");
            // reusable afterwards
            assert_eq!(merged(&exec, 500), merged(&Executor::sequential(), 500));
        }
    }

    /// The whole input is charged up front: a budget smaller than the
    /// row list trips before any scatter work happens.
    #[test]
    fn input_charge_trips_budget() {
        use audb_core::{Budget, BudgetSpec};
        let exec = Executor::new(4).with_budget(Budget::new(BudgetSpec::rows(100)));
        let err = exec.hash_merge_sorted(rows(500), |_| true, |acc, k| *acc += k).unwrap_err();
        assert!(
            matches!(err, ExecError::BudgetExceeded { operator: "sharded-reduce", .. }),
            "got: {err:?}"
        );
    }
}
