//! The sharded pipeline driver: run a whole operator chain per shard.
//!
//! [`Executor::run`] parallelizes *one* operator at a time: every
//! operator materializes its full output and (usually) pays a
//! hash-merge + sort barrier before the next operator starts. For
//! chains of *row-local* operators (selection, projection, `Enc`/`Dec`,
//! the probe side of a planned join) none of those barriers is needed:
//! the chain composes into a single function from input rows to output
//! rows, so the whole chain can run shard-by-shard over the base table
//! and pay **one** merge at the pipeline breaker.
//!
//! This module provides the two generic pieces (the operator-aware
//! chain builders live in `audb_query`, which knows the semantics):
//!
//! * [`ShardSource`] — slices an index space `0..n` into `S` contiguous
//!   shards. A shard is a morsel source with its own base-table slice;
//!   unlike [`Partitioner`] morsels the shard count is an explicit knob
//!   (`AuConfig::shards`) so determinism tests can force any shape.
//! * [`Executor::run_shards`] — runs a fallible producer once per shard
//!   on the pool and concatenates the per-shard outputs **in shard
//!   order**. For a pure producer the result is byte-identical to the
//!   sequential loop over `0..n`, for any worker count and any shard
//!   count — the same ordered-merge argument as [`Executor::run`].
//!
//! The pipeline breaker itself is [`Executor::hash_merge_sorted`]: the
//! one normalization a fused chain pays, at the point where the chain
//! ends (an aggregate, a difference, a union tail, or the final query
//! result).

use std::ops::Range;

use audb_core::obs::Counter;
use audb_core::ExecError;

use crate::partition::Partitioner;
use crate::pool::Executor;

/// Slices an index space into `S` contiguous near-equal shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSource {
    shards: usize,
}

impl ShardSource {
    /// Exactly `shards` shards (0 is treated as 1). Slicing an index
    /// space smaller than the shard count yields fewer (non-empty)
    /// shards.
    pub fn new(shards: usize) -> Self {
        ShardSource { shards: shards.max(1) }
    }

    /// Auto-sized sharding: up to `workers × 4` shards (load-balancing
    /// slack, mirroring [`Partitioner`]'s morsel slack) but never
    /// smaller than `min_rows_per_shard` rows each, so tiny inputs run
    /// as a single shard on the caller's thread.
    pub fn auto(workers: usize, rows: usize, min_rows_per_shard: usize) -> Self {
        let cap = workers.max(1) * 4;
        let by_rows = rows / min_rows_per_shard.max(1);
        ShardSource::new(cap.min(by_rows).max(1))
    }

    /// Number of shards this source was built for.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Split `0..n` into contiguous shards covering it exactly; the
    /// first `n % shards` shards get one extra row. Empty shards are
    /// omitted.
    pub fn slices(&self, n: usize) -> Vec<Range<usize>> {
        if n == 0 {
            return Vec::new();
        }
        let count = self.shards.min(n);
        let base = n / count;
        let extra = n % count;
        let mut out = Vec::with_capacity(count);
        let mut start = 0;
        for i in 0..count {
            let len = base + usize::from(i < extra);
            out.push(start..start + len);
            start += len;
        }
        debug_assert_eq!(start, n);
        out
    }
}

impl Executor {
    /// Run `produce` once per shard of `0..n` and concatenate the
    /// per-shard outputs in shard order.
    ///
    /// Exactly the [`Executor::run`] contract with explicit shard
    /// boundaries: `produce(range, out)` must append what the
    /// sequential loop over `range` would push, in the same order;
    /// the concatenation in shard order then equals the sequential
    /// output over `0..n` for any worker count and any shard count.
    /// Errors are deterministic — the earliest failing shard wins. An
    /// empty source (zero rows, hence zero shards) returns the empty
    /// result without touching the pool. Shards always run through
    /// [`Executor::run`], so panic containment, cancellation
    /// checkpoints, and fault injection apply per claimed morsel on
    /// every path (a single shard or worker is simply the pool's inline
    /// fast path).
    pub fn run_shards<T, E, F>(
        &self,
        n: usize,
        source: &ShardSource,
        produce: F,
    ) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send + From<ExecError>,
        F: Fn(Range<usize>, &mut Vec<T>) -> Result<(), E> + Sync,
    {
        let slices = source.slices(n);
        if slices.is_empty() {
            return Ok(Vec::new());
        }
        self.metrics().add(Counter::ShardsDispatched, slices.len() as u64);
        // One pool job per shard: the meta-executor partitions the
        // shard list one-to-one (no row-level morsel floor — the shard
        // count already encodes the parallelism decision).
        let meta = self.clone().with_partitioner(Partitioner {
            min_morsel: 1,
            morsels_per_worker: 1,
            min_rows_per_worker: 0,
        });
        meta.run(slices.len(), |range, out| {
            for si in range {
                produce(slices[si].clone(), out)?;
            }
            Ok(())
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn cover(n: usize, slices: &[Range<usize>]) {
        let mut pos = 0;
        for s in slices {
            assert_eq!(s.start, pos, "shards must be contiguous");
            assert!(s.end > s.start, "shards must be non-empty");
            pos = s.end;
        }
        assert_eq!(pos, n, "shards must cover 0..n exactly");
    }

    #[test]
    fn slices_cover_and_balance() {
        for n in [0usize, 1, 2, 7, 100, 10_001] {
            for s in [1usize, 3, 8, 64] {
                let slices = ShardSource::new(s).slices(n);
                cover(n, &slices);
                assert!(slices.len() <= s.max(1));
                // near-equal shards; total on the empty slice list (an
                // empty source yields zero shards, not a panic)
                let (min, max) = slices
                    .iter()
                    .map(Range::len)
                    .fold((usize::MAX, 0), |(lo, hi), l| (lo.min(l), hi.max(l)));
                assert!(slices.is_empty() || max - min <= 1, "near-equal shards");
            }
        }
    }

    #[test]
    fn auto_floors_tiny_inputs_to_one_shard() {
        assert_eq!(ShardSource::auto(8, 100, 1024).shards(), 1);
        assert_eq!(ShardSource::auto(4, 100_000, 1024).shards(), 16);
        assert_eq!(ShardSource::auto(4, 5000, 1024).shards(), 4);
    }

    /// Ragged per-item output, exercised across worker × shard shapes.
    fn produce(r: Range<usize>, out: &mut Vec<usize>) -> Result<(), String> {
        for i in r {
            for rep in 0..(i % 3) + 1 {
                out.push(i * 100 + rep);
            }
        }
        Ok(())
    }

    #[test]
    fn output_identical_for_any_worker_and_shard_count() {
        let n = 4001;
        let seq = Executor::sequential().run_shards(n, &ShardSource::new(1), produce).unwrap();
        for w in [1usize, 2, 4, 7] {
            for s in [1usize, 3, 8, 40] {
                let got = Executor::new(w).run_shards(n, &ShardSource::new(s), produce).unwrap();
                assert_eq!(got, seq, "workers = {w}, shards = {s}");
            }
        }
    }

    #[test]
    fn earliest_shard_error_wins() {
        let fail_at = |bad: usize| {
            move |r: Range<usize>, out: &mut Vec<usize>| -> Result<(), String> {
                for i in r {
                    if i >= bad {
                        return Err(format!("item {i}"));
                    }
                    out.push(i);
                }
                Ok(())
            }
        };
        for w in [1usize, 4] {
            assert_eq!(
                Executor::new(w).run_shards(100, &ShardSource::new(8), fail_at(40)),
                Err("item 40".to_string()),
                "workers = {w}"
            );
        }
    }

    /// Regression: a zero-row source must yield the empty result — for
    /// every shard count, including the degenerate `ShardSource::new(0)`
    /// — never panic on the empty slice list.
    #[test]
    fn empty_source_yields_empty_result() {
        for w in [1usize, 4] {
            for s in [0usize, 1, 3, 8] {
                let out = Executor::new(w).run_shards(0, &ShardSource::new(s), produce).unwrap();
                assert!(out.is_empty(), "workers = {w}, shards = {s}");
            }
        }
        assert!(ShardSource::new(0).slices(0).is_empty());
        assert_eq!(ShardSource::auto(0, 0, 0).shards(), 1);
    }

    /// A panicking shard producer is contained and reported with the
    /// pool's structured error; the executor stays reusable.
    #[test]
    fn shard_panic_is_contained() {
        let panicky = |r: Range<usize>, out: &mut Vec<usize>| -> Result<(), String> {
            for i in r {
                assert!(i != 50, "shard bomb");
                out.push(i);
            }
            Ok(())
        };
        for w in [1usize, 4] {
            let exec = Executor::new(w);
            let err = exec.run_shards(100, &ShardSource::new(8), panicky).unwrap_err();
            assert!(err.contains("worker panicked"), "workers = {w}, got: {err}");
            let seq = Executor::sequential().run_shards(100, &ShardSource::new(1), produce);
            assert_eq!(exec.run_shards(100, &ShardSource::new(8), produce), seq);
        }
    }
}
