//! The scoped thread pool and its deterministic ordered-merge collector.

use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::thread;

use crate::partition::Partitioner;

/// One morsel's pending output: filled exactly once by the worker that
/// claims the morsel.
type Slot<T, E> = Mutex<Option<Result<Vec<T>, E>>>;

/// Hardware parallelism, probed once. Falls back to 1 when the platform
/// cannot report it.
pub fn available_workers() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1))
}

/// A partition-parallel executor: worker count + partitioning rules.
///
/// [`Executor::run`] is the single primitive every driver uses. It maps
/// a fallible producer over the morsels of `0..n` and concatenates the
/// per-morsel outputs **in morsel order**, which makes the merged output
/// byte-identical to the sequential evaluation of the same producer —
/// the guarantee the query layer's property tests pin down for every
/// worker count.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    workers: usize,
    partitioner: Partitioner,
}

impl Default for Executor {
    /// Use all available hardware threads.
    fn default() -> Self {
        Executor::new(available_workers())
    }
}

impl Executor {
    /// An executor with exactly `workers` threads (0 is treated as 1).
    pub fn new(workers: usize) -> Self {
        Executor { workers: workers.max(1), partitioner: Partitioner::default() }
    }

    /// The exact-current-behavior executor: everything runs inline on
    /// the caller's thread.
    pub fn sequential() -> Self {
        Executor::new(1)
    }

    /// Resolve an optional worker count: `None` means all available
    /// hardware threads, `Some(w)` means exactly `w`.
    pub fn from_option(workers: Option<usize>) -> Self {
        match workers {
            Some(w) => Executor::new(w),
            None => Executor::default(),
        }
    }

    /// Override the partitioning rules.
    pub fn with_partitioner(mut self, partitioner: Partitioner) -> Self {
        self.partitioner = partitioner;
        self
    }

    /// Tune the adaptive parallelism floor
    /// ([`Partitioner::min_rows_per_worker`]) for drivers whose
    /// per-item cost differs from the default row-loop profile —
    /// aggregation's group partitions or difference's per-left-tuple
    /// reductions do far more work per item than a probe or a
    /// normalization scatter, so they stay parallel at lower counts.
    pub fn with_min_rows_per_worker(mut self, min_rows_per_worker: usize) -> Self {
        self.partitioner.min_rows_per_worker = min_rows_per_worker;
        self
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    pub fn partitioner(&self) -> &Partitioner {
        &self.partitioner
    }

    /// Run `produce` over every morsel of `0..n` and return the
    /// concatenation of the per-morsel outputs in morsel order.
    ///
    /// `produce(range, out)` must append the output rows for the items
    /// in `range` to `out` — exactly what the body of the corresponding
    /// sequential loop would push, in the same order. Errors are
    /// reported deterministically: the error of the *earliest* failing
    /// morsel wins, matching what the sequential loop would have hit
    /// first (later morsels may still be computed; producers are pure,
    /// so the extra work is discarded, not observable).
    pub fn run<T, E, F>(&self, n: usize, produce: F) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send,
        F: Fn(Range<usize>, &mut Vec<T>) -> Result<(), E> + Sync,
    {
        let morsels = self.partitioner.morsels(n, self.workers);
        // Inline fast path: sequential executor or a single morsel.
        if self.workers <= 1 || morsels.len() <= 1 {
            let mut out = Vec::new();
            for m in morsels {
                produce(m, &mut out)?;
            }
            return Ok(out);
        }

        let cursor = AtomicUsize::new(0);
        let slots: Vec<Slot<T, E>> = morsels.iter().map(|_| Mutex::new(None)).collect();
        let threads = self.workers.min(morsels.len());
        thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(m) = morsels.get(i) else { break };
                    let mut out = Vec::new();
                    let res = produce(m.clone(), &mut out).map(|()| out);
                    *slots[i].lock().unwrap() = Some(res);
                });
            }
        });

        // Ordered merge: slot i holds morsel i's rows; every slot is
        // filled once the scope joins.
        let mut merged = Vec::new();
        for slot in slots {
            let rows = slot
                .into_inner()
                .unwrap()
                .expect("scope joined: every claimed morsel stored a result")?;
            merged.extend(rows);
        }
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A producer with per-item output count depending on the item, to
    /// exercise the ordered merge with ragged morsels.
    fn produce(r: Range<usize>, out: &mut Vec<usize>) -> Result<(), String> {
        for i in r {
            for rep in 0..(i % 3) + 1 {
                out.push(i * 10 + rep);
            }
        }
        Ok(())
    }

    #[test]
    fn parallel_output_identical_to_sequential() {
        let n = 5000;
        let seq = Executor::sequential().run(n, produce).unwrap();
        for w in [2usize, 3, 4, 7, 16] {
            let par = Executor::new(w).run(n, produce).unwrap();
            assert_eq!(par, seq, "workers = {w}");
        }
    }

    #[test]
    fn small_partitioner_forces_many_morsels() {
        let exec = Executor::new(4).with_partitioner(Partitioner {
            min_morsel: 1,
            morsels_per_worker: 8,
            min_rows_per_worker: 0,
        });
        let seq = Executor::sequential().run(100, produce).unwrap();
        assert_eq!(exec.run(100, produce).unwrap(), seq);
    }

    #[test]
    fn empty_input() {
        let out = Executor::new(4).run(0, produce).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn earliest_morsel_error_wins() {
        let exec = Executor::new(4).with_partitioner(Partitioner {
            min_morsel: 1,
            morsels_per_worker: 4,
            min_rows_per_worker: 0,
        });
        let fail_at = |bad: usize| {
            move |r: Range<usize>, out: &mut Vec<usize>| -> Result<(), usize> {
                for i in r {
                    if i >= bad {
                        return Err(i);
                    }
                    out.push(i);
                }
                Ok(())
            }
        };
        // every item from 40 on errors; the earliest morsel containing
        // one reports 40, same as the sequential loop
        assert_eq!(exec.run(100, fail_at(40)), Err(40));
        assert_eq!(Executor::sequential().run(100, fail_at(40)), Err(40));
    }

    #[test]
    fn worker_count_resolution() {
        assert_eq!(Executor::new(0).workers(), 1);
        assert_eq!(Executor::from_option(Some(3)).workers(), 3);
        assert_eq!(Executor::from_option(None).workers(), available_workers());
    }
}
