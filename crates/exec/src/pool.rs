//! The scoped thread pool and its deterministic ordered-merge collector.

use std::num::NonZeroUsize;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::thread;
use std::time::Instant;

use audb_core::obs::{Counter, Metrics, Site};
use audb_core::{Budget, CancelToken, ExecError};

use crate::gate::{GateLease, WorkerGate};
use crate::partition::Partitioner;

/// One morsel's pending output: a poison-tolerant one-shot slot, filled
/// exactly once by the worker that claims the morsel. Producer panics
/// are already caught at the morsel boundary (so no user code can
/// unwind while the lock is held), and both accessors recover from a
/// poisoned lock anyway — a panicking worker can never wedge the merge
/// phase.
#[derive(Debug)]
struct Slot<V>(Mutex<Option<V>>);

impl<V> Slot<V> {
    fn empty() -> Self {
        Slot(Mutex::new(None))
    }

    /// Store the claimed morsel's result (first write wins; the claim
    /// cursor hands each index to exactly one worker).
    fn set(&self, value: V) {
        let mut guard = self.0.lock().unwrap_or_else(PoisonError::into_inner);
        guard.get_or_insert(value);
    }

    fn into_inner(self) -> Option<V> {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Hardware parallelism, probed once. Falls back to 1 when the platform
/// cannot report it.
pub fn available_workers() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1))
}

/// Render a caught panic payload for [`ExecError::WorkerPanic`].
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A partition-parallel executor: worker count + partitioning rules,
/// plus the per-query governance context (cancellation token, resource
/// budget) every driver checks.
///
/// [`Executor::run`] is the single primitive every driver uses. It maps
/// a fallible producer over the morsels of `0..n` and concatenates the
/// per-morsel outputs **in morsel order**, which makes the merged output
/// byte-identical to the sequential evaluation of the same producer —
/// the guarantee the query layer's property tests pin down for every
/// worker count.
///
/// ## Fault containment
///
/// A panic inside a producer is caught at the morsel boundary
/// ([`std::panic::catch_unwind`]) and surfaces as a structured
/// [`ExecError::WorkerPanic`] through the normal error path: sibling
/// workers drain their remaining morsels, the scope joins cleanly, and
/// the executor is immediately reusable — there is no pool state to
/// poison (result slots are poison-tolerant one-shot cells and the only
/// shared mutable state is the atomic claim cursor).
#[derive(Debug, Clone)]
pub struct Executor {
    workers: usize,
    partitioner: Partitioner,
    cancel: Option<CancelToken>,
    budget: Option<Budget>,
    metrics: Metrics,
    gate: Option<WorkerGate>,
}

impl Default for Executor {
    /// Use all available hardware threads.
    fn default() -> Self {
        Executor::new(available_workers())
    }
}

impl Executor {
    /// An executor with exactly `workers` threads (0 is treated as 1).
    pub fn new(workers: usize) -> Self {
        Executor {
            workers: workers.max(1),
            partitioner: Partitioner::default(),
            cancel: None,
            budget: None,
            metrics: Metrics::disabled(),
            gate: None,
        }
    }

    /// The exact-current-behavior executor: everything runs inline on
    /// the caller's thread.
    pub fn sequential() -> Self {
        Executor::new(1)
    }

    /// Resolve an optional worker count: `None` means all available
    /// hardware threads, `Some(w)` means exactly `w`.
    pub fn from_option(workers: Option<usize>) -> Self {
        match workers {
            Some(w) => Executor::new(w),
            None => Executor::default(),
        }
    }

    /// Override the partitioning rules.
    pub fn with_partitioner(mut self, partitioner: Partitioner) -> Self {
        self.partitioner = partitioner;
        self
    }

    /// Tune the adaptive parallelism floor
    /// ([`Partitioner::min_rows_per_worker`]) for drivers whose
    /// per-item cost differs from the default row-loop profile —
    /// aggregation's group partitions or difference's per-left-tuple
    /// reductions do far more work per item than a probe or a
    /// normalization scatter, so they stay parallel at lower counts.
    pub fn with_min_rows_per_worker(mut self, min_rows_per_worker: usize) -> Self {
        self.partitioner.min_rows_per_worker = min_rows_per_worker;
        self
    }

    /// Attach a cooperative cancellation token: every driver checks it
    /// at morsel boundaries (and batch evaluation between op sweeps),
    /// surfacing [`ExecError::Cancelled`] / [`ExecError::DeadlineExceeded`].
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attach a resource budget, charged by the operators that can
    /// expand an intermediate (join probes, pipeline chains, the
    /// sharded-reduce scatter).
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Attach a metrics sink. Cloned executors (the reduce and shard
    /// meta-drivers) share it, so one query's drivers all report into
    /// the same meters. The default, [`Metrics::disabled`], costs one
    /// branch per instrumentation site.
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// Share a [`WorkerGate`]: before spawning worker threads, the
    /// driver claims a share of the gate's engine-wide thread budget
    /// (non-blocking) and spawns only what it is granted. A query that
    /// gets nothing runs inline — results are worker-count-invariant,
    /// so contention degrades latency, never answers. Cloned executors
    /// (the reduce and shard meta-drivers) share the gate, so one
    /// engine's concurrent queries draw from a single pool.
    pub fn with_worker_gate(mut self, gate: WorkerGate) -> Self {
        self.gate = Some(gate);
        self
    }

    /// The attached metrics sink (disabled by default).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    pub fn partitioner(&self) -> &Partitioner {
        &self.partitioner
    }

    /// The attached cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// The attached resource budget, if any.
    pub fn budget(&self) -> Option<&Budget> {
        self.budget.as_ref()
    }

    /// Cooperative cancellation checkpoint: `Ok(())` when no token is
    /// attached or the token is still running.
    pub fn check_cancel(&self) -> Result<(), ExecError> {
        match &self.cancel {
            Some(token) => {
                self.metrics.add(Counter::CancelChecks, 1);
                token.check()
            }
            None => Ok(()),
        }
    }

    /// Charge the attached budget (no-op without one). A tripped budget
    /// lands in the metrics event log with the charging operator.
    pub fn charge(&self, operator: &'static str, rows: u64, bytes: u64) -> Result<(), ExecError> {
        match &self.budget {
            Some(budget) => {
                self.metrics.add(Counter::BudgetCharges, 1);
                self.metrics.add(Counter::BudgetRowsCharged, rows);
                self.metrics.add(Counter::BudgetBytesCharged, bytes);
                let verdict = budget.charge(operator, rows, bytes);
                if let Err(e) = &verdict {
                    self.metrics.record_exec_error(e, None, None);
                }
                verdict
            }
            None => Ok(()),
        }
    }

    /// Run `produce` over every morsel of `0..n` and return the
    /// concatenation of the per-morsel outputs in morsel order.
    ///
    /// `produce(range, out)` must append the output rows for the items
    /// in `range` to `out` — exactly what the body of the corresponding
    /// sequential loop would push, in the same order. Errors are
    /// reported deterministically: the error of the *earliest* failing
    /// morsel wins, matching what the sequential loop would have hit
    /// first (later morsels may still be computed; producers are pure,
    /// so the extra work is discarded, not observable).
    ///
    /// Runtime faults — a caught producer panic, a tripped cancellation
    /// token, an injected test fault — surface through the same error
    /// path, which is why `E` must absorb [`ExecError`].
    pub fn run<T, E, F>(&self, n: usize, produce: F) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send + From<ExecError>,
        F: Fn(Range<usize>, &mut Vec<T>) -> Result<(), E> + Sync,
    {
        let morsels = self.partitioner.morsels(n, self.workers);

        // Deterministic fault addressing: drivers enter sequentially on
        // the query thread, so (driver sequence number, morsel index)
        // names one checkpoint regardless of worker interleaving. The
        // metrics sink numbers drivers the same way, so observed events
        // carry the same coordinates the fault harness arms.
        #[cfg(feature = "faults")]
        let fault_ctx = crate::faults::driver_context();

        let driver = self.metrics.is_enabled().then(|| {
            self.metrics.add(Counter::DriversEntered, 1);
            self.metrics.add(Counter::MorselsDispatched, morsels.len() as u64);
            self.metrics.enter_driver()
        });
        let started = self.metrics.is_enabled().then(Instant::now);
        let finish = |result: Result<Vec<T>, E>| {
            if let Some(t) = started {
                self.metrics.record_ns(Site::Driver, t.elapsed().as_nanos() as u64);
            }
            result
        };

        // One morsel, fully contained: cancellation checkpoint at the
        // boundary, then fault checkpoint + producer under catch_unwind.
        let run_morsel = |index: usize, morsel: Range<usize>| -> Result<Vec<T>, E> {
            if let Err(e) = self.check_cancel() {
                self.metrics.record_exec_error(&e, driver, Some(index));
                return Err(E::from(e));
            }
            let caught = catch_unwind(AssertUnwindSafe(|| -> Result<Vec<T>, E> {
                #[cfg(feature = "faults")]
                if let Some((plan, fault_driver)) = &fault_ctx {
                    if let Err(e) = plan.checkpoint(*fault_driver, index, self.cancel.as_ref()) {
                        self.metrics.record_exec_error(&e, driver, Some(index));
                        return Err(E::from(e));
                    }
                }
                let mut out = Vec::new();
                produce(morsel, &mut out).map(|()| out)
            }));
            caught.unwrap_or_else(|payload| {
                let e = ExecError::WorkerPanic { morsel: index, payload: panic_text(payload) };
                self.metrics.record_exec_error(&e, driver, Some(index));
                Err(E::from(e))
            })
        };

        // Shared-gate claim: with a gate attached, spawn only the
        // granted share of the engine-wide thread budget (non-blocking
        // partial acquisition). A starved claim degrades to the inline
        // path — same bytes out, the caller's thread does all the work.
        // The lease lives until this call returns, covering the scope.
        let wanted = self.workers.min(morsels.len().max(1));
        let lease = match &self.gate {
            Some(gate) if wanted > 1 => Some(gate.try_acquire(wanted)),
            _ => None,
        };
        let threads = lease.as_ref().map_or(wanted, GateLease::granted);

        // Inline fast path: sequential executor, a single morsel, or a
        // starved gate.
        if threads <= 1 || morsels.len() <= 1 {
            let mut merged = Vec::new();
            for (i, m) in morsels.into_iter().enumerate() {
                match run_morsel(i, m) {
                    Ok(rows) if merged.is_empty() => merged = rows,
                    Ok(rows) => merged.extend(rows),
                    Err(e) => return finish(Err(e)),
                }
            }
            return finish(Ok(merged));
        }

        let cursor = AtomicUsize::new(0);
        let slots: Vec<Slot<Result<Vec<T>, E>>> = morsels.iter().map(|_| Slot::empty()).collect();
        thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(m) = morsels.get(i) else { break };
                    slots[i].set(run_morsel(i, m.clone()));
                });
            }
        });

        // Ordered merge: slot i holds morsel i's rows; every claimed
        // morsel stored a result before the scope joined, and the
        // monotonic cursor claims every index, so every slot is filled.
        let mut merged = Vec::new();
        for (i, slot) in slots.into_iter().enumerate() {
            match slot.into_inner() {
                Some(Ok(rows)) => merged.extend(rows),
                Some(Err(e)) => return finish(Err(e)),
                None => {
                    // defensively structured — unreachable per the claim
                    // argument above
                    return finish(Err(E::from(ExecError::WorkerPanic {
                        morsel: i,
                        payload: "result slot never filled".to_string(),
                    })));
                }
            }
        }
        finish(Ok(merged))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use audb_core::BudgetSpec;

    /// A producer with per-item output count depending on the item, to
    /// exercise the ordered merge with ragged morsels.
    fn produce(r: Range<usize>, out: &mut Vec<usize>) -> Result<(), String> {
        for i in r {
            for rep in 0..(i % 3) + 1 {
                out.push(i * 10 + rep);
            }
        }
        Ok(())
    }

    #[test]
    fn parallel_output_identical_to_sequential() {
        let n = 5000;
        let seq = Executor::sequential().run(n, produce).unwrap();
        for w in [2usize, 3, 4, 7, 16] {
            let par = Executor::new(w).run(n, produce).unwrap();
            assert_eq!(par, seq, "workers = {w}");
        }
    }

    #[test]
    fn small_partitioner_forces_many_morsels() {
        let exec = Executor::new(4).with_partitioner(Partitioner {
            min_morsel: 1,
            morsels_per_worker: 8,
            min_rows_per_worker: 0,
        });
        let seq = Executor::sequential().run(100, produce).unwrap();
        assert_eq!(exec.run(100, produce).unwrap(), seq);
    }

    #[test]
    fn empty_input() {
        let out = Executor::new(4).run(0, produce).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn earliest_morsel_error_wins() {
        let exec = Executor::new(4).with_partitioner(Partitioner {
            min_morsel: 1,
            morsels_per_worker: 4,
            min_rows_per_worker: 0,
        });
        let fail_at = |bad: usize| {
            move |r: Range<usize>, out: &mut Vec<usize>| -> Result<(), String> {
                for i in r {
                    if i >= bad {
                        return Err(format!("item {i}"));
                    }
                    out.push(i);
                }
                Ok(())
            }
        };
        // every item from 40 on errors; the earliest morsel containing
        // one reports 40, same as the sequential loop
        assert_eq!(exec.run(100, fail_at(40)), Err("item 40".to_string()));
        assert_eq!(Executor::sequential().run(100, fail_at(40)), Err("item 40".to_string()));
    }

    #[test]
    fn worker_count_resolution() {
        assert_eq!(Executor::new(0).workers(), 1);
        assert_eq!(Executor::from_option(Some(3)).workers(), 3);
        assert_eq!(Executor::from_option(None).workers(), available_workers());
    }

    /// A panicking producer surfaces as `WorkerPanic` — and the same
    /// executor value immediately runs the next query (no poisoned
    /// state, pool fully reusable).
    #[test]
    fn producer_panic_is_contained_and_pool_reusable() {
        let exec = Executor::new(4).with_partitioner(Partitioner {
            min_morsel: 1,
            morsels_per_worker: 4,
            min_rows_per_worker: 0,
        });
        let panicky = |r: Range<usize>, out: &mut Vec<usize>| -> Result<(), String> {
            for i in r {
                assert!(i != 37, "injected panic at item 37");
                out.push(i);
            }
            Ok(())
        };
        for _ in 0..2 {
            let err = exec.run(100, panicky).unwrap_err();
            assert!(err.contains("worker panicked"), "structured panic error, got: {err}");
            assert!(err.contains("injected panic at item 37"), "payload preserved, got: {err}");
            // follow-up query on the same executor works
            let seq = Executor::sequential().run(100, produce).unwrap();
            assert_eq!(exec.run(100, produce).unwrap(), seq);
        }
    }

    /// Sequential (inline-path) panics are contained identically.
    #[test]
    fn inline_path_panic_is_contained() {
        let exec = Executor::sequential();
        let panicky = |_r: Range<usize>, _out: &mut Vec<usize>| -> Result<(), String> {
            panic!("inline boom");
        };
        let err = exec.run(10, panicky).unwrap_err();
        assert!(err.contains("inline boom"));
        assert_eq!(exec.run(10, produce).unwrap(), Executor::new(1).run(10, produce).unwrap());
    }

    #[test]
    fn cancelled_token_stops_at_morsel_boundary() {
        let token = CancelToken::new();
        token.cancel();
        let exec = Executor::new(4).with_cancel(token);
        let err = exec.run(10_000, produce).unwrap_err();
        assert_eq!(err, String::from(ExecError::Cancelled));
    }

    #[test]
    fn expired_deadline_reports_deadline_exceeded() {
        let token = CancelToken::with_deadline_in(std::time::Duration::ZERO);
        let exec = Executor::new(2).with_cancel(token);
        let err = exec.run(10_000, produce).unwrap_err();
        assert_eq!(err, String::from(ExecError::DeadlineExceeded));
    }

    #[test]
    fn gated_executor_matches_sequential_at_any_grant() {
        let seq = Executor::sequential().run(5000, produce).unwrap();
        // plenty of budget, a starved gate, and a partial grant all
        // produce identical bytes
        for total in [0usize, 1, 2, 16] {
            let exec = Executor::new(4).with_worker_gate(WorkerGate::new(total));
            assert_eq!(exec.run(5000, produce).unwrap(), seq, "gate total = {total}");
        }
    }

    #[test]
    fn gate_releases_after_each_run() {
        let gate = WorkerGate::new(4);
        let exec = Executor::new(4).with_worker_gate(gate.clone());
        for _ in 0..3 {
            let seq = Executor::sequential().run(1000, produce).unwrap();
            assert_eq!(exec.run(1000, produce).unwrap(), seq);
            assert_eq!(gate.leased(), 0, "lease returned when the driver exits");
        }
    }

    #[test]
    fn budget_charge_helper_trips() {
        let exec = Executor::new(2).with_budget(Budget::new(BudgetSpec::rows(5)));
        assert!(exec.charge("join-probe", 5, 0).is_ok());
        let err = exec.charge("join-probe", 1, 0).unwrap_err();
        assert!(matches!(err, ExecError::BudgetExceeded { operator: "join-probe", .. }));
        // no budget attached → no-op
        assert!(Executor::new(2).charge("join-probe", u64::MAX, u64::MAX).is_ok());
    }
}
