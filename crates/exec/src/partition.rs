//! Morsel partitioning: split an index space into contiguous work units.

use std::ops::Range;

/// Splits `0..n` into contiguous morsels.
///
/// The rules are deliberately simple and deterministic:
///
/// * below `workers × min_rows_per_worker` items the whole space is a
///   single morsel — the adaptive parallelism floor: spawning scoped
///   threads and merging their slots costs ~0.4–0.6 ms per call
///   (`BENCH_exec_engine.json`, `planned_1k_w2`), so a multi-worker
///   executor silently degrades to the inline path on inputs too small
///   to amortize it;
/// * below [`Partitioner::min_morsel`] items the whole space is a single
///   morsel (parallelism cannot pay for itself on tiny inputs);
/// * otherwise the space is cut into at most
///   `workers * morsels_per_worker` morsels of near-equal size, but
///   never smaller than `min_morsel` — more morsels than workers keeps
///   the pool load-balanced when per-item cost is skewed (e.g. hash
///   buckets of very different sizes).
///
/// Morsel boundaries never affect results: the ordered-merge collector
/// concatenates morsel outputs in morsel order, which equals sequential
/// order for any split of a contiguous space — degrading to one morsel
/// only changes *where* the work runs, never its output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partitioner {
    /// Minimum items per morsel; inputs smaller than this stay
    /// sequential.
    pub min_morsel: usize,
    /// Target morsels per worker (load-balancing slack).
    pub morsels_per_worker: usize,
    /// Minimum items per *worker* before a multi-worker executor leaves
    /// the inline path (0 disables the floor). Callers whose per-item
    /// cost is far from the default row-loop profile tune this via
    /// [`crate::Executor::with_min_rows_per_worker`] — e.g. aggregation
    /// partitions *groups* (each folding many member rows) and uses a
    /// much lower floor.
    pub min_rows_per_worker: usize,
}

impl Default for Partitioner {
    fn default() -> Self {
        Partitioner { min_morsel: 128, morsels_per_worker: 4, min_rows_per_worker: 1024 }
    }
}

impl Partitioner {
    /// Split `0..n` for the given worker count.
    pub fn morsels(&self, n: usize, workers: usize) -> Vec<Range<usize>> {
        if n == 0 {
            return Vec::new();
        }
        // Adaptive floor: not enough rows per worker to pay for the
        // pool — hand back a single morsel so the executor runs inline.
        if workers > 1 && n < workers.saturating_mul(self.min_rows_per_worker) {
            return vec![Range { start: 0, end: n }];
        }
        let min = self.min_morsel.max(1);
        let target = workers.max(1) * self.morsels_per_worker.max(1);
        let count = (n / min).clamp(1, target);
        if count <= 1 {
            return vec![Range { start: 0, end: n }];
        }
        // near-equal chunks: the first `n % count` morsels get one extra
        let base = n / count;
        let extra = n % count;
        let mut out = Vec::with_capacity(count);
        let mut start = 0;
        for i in 0..count {
            let len = base + usize::from(i < extra);
            out.push(start..start + len);
            start += len;
        }
        debug_assert_eq!(start, n);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(n: usize, morsels: &[Range<usize>]) {
        let mut pos = 0;
        for m in morsels {
            assert_eq!(m.start, pos, "morsels must be contiguous");
            assert!(m.end > m.start, "morsels must be non-empty");
            pos = m.end;
        }
        assert_eq!(pos, n, "morsels must cover 0..n exactly");
    }

    #[test]
    fn empty_input_yields_no_morsels() {
        assert!(Partitioner::default().morsels(0, 4).is_empty());
    }

    #[test]
    fn tiny_input_stays_sequential() {
        let p = Partitioner::default();
        assert_eq!(p.morsels(1, 8), vec![0..1]);
        assert_eq!(p.morsels(p.min_morsel, 8), vec![0..p.min_morsel]);
    }

    #[test]
    fn large_input_splits_and_covers() {
        let p = Partitioner::default();
        for n in [129usize, 1000, 4096, 10_001] {
            for w in [1usize, 2, 4, 7] {
                let ms = p.morsels(n, w);
                cover(n, &ms);
                assert!(ms.len() <= w * p.morsels_per_worker);
                for m in &ms {
                    assert!(m.len() >= p.min_morsel.min(n));
                }
            }
        }
    }

    #[test]
    fn morsel_sizes_are_balanced() {
        let ms = Partitioner { min_morsel: 1, morsels_per_worker: 1, min_rows_per_worker: 0 }
            .morsels(10, 3);
        cover(10, &ms);
        let sizes: Vec<usize> = ms.iter().map(|m| m.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    /// The adaptive parallelism floor: multi-worker splits only engage
    /// once every worker has at least `min_rows_per_worker` items.
    #[test]
    fn min_rows_per_worker_floors_small_inputs() {
        let p = Partitioner::default();
        // 1000 rows at 2 workers: under the 2 × 1024 floor → one morsel
        assert_eq!(p.morsels(1000, 2).len(), 1);
        assert_eq!(p.morsels(1000, 4).len(), 1);
        // a single worker is already inline; the floor does not apply
        assert!(p.morsels(1000, 1).len() > 1);
        // above the floor the usual morsel split engages
        assert!(p.morsels(4096, 2).len() > 1);
        assert!(p.morsels(40_000, 4).len() > 1);
        // the floor can be disabled
        let forced = Partitioner { min_rows_per_worker: 0, ..Partitioner::default() };
        assert!(forced.morsels(1000, 4).len() > 1);
    }
}
