//! The shared worker gate: one engine-wide budget of worker threads.
//!
//! Every [`Executor::run`](crate::Executor::run) call spawns its own
//! scoped threads, so N concurrent queries each configured for W
//! workers would put N×W threads on the machine — oversubscription
//! that grows unbounded with load. A [`WorkerGate`] caps the *total*
//! number of extra worker threads alive across every executor that
//! shares it (a serving engine hands one gate to all of its queries).
//!
//! Acquisition is **non-blocking and partial**: a driver asks for the
//! threads it wants and is granted whatever share is free, possibly
//! zero. A query that gets nothing simply runs inline on its own
//! thread — the ordered-merge collector makes results identical for
//! any worker count, so degrading parallelism under contention changes
//! latency, never answers. No driver ever waits on the gate, so the
//! gate cannot deadlock and admission-level queueing stays the only
//! place where queries wait.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[derive(Debug)]
struct GateInner {
    /// Total extra worker threads the gate will allow alive at once.
    total: usize,
    /// Currently leased threads.
    leased: AtomicUsize,
}

/// A shared, cloneable budget of worker threads. Clones share the same
/// meter; see the module docs for the contention model.
#[derive(Debug, Clone)]
pub struct WorkerGate {
    inner: Arc<GateInner>,
}

impl WorkerGate {
    /// A gate allowing at most `total` extra worker threads engine-wide
    /// (0 forces every sharing executor inline).
    pub fn new(total: usize) -> Self {
        WorkerGate { inner: Arc::new(GateInner { total, leased: AtomicUsize::new(0) }) }
    }

    /// The gate's total thread budget.
    pub fn total(&self) -> usize {
        self.inner.total
    }

    /// Threads currently leased out.
    pub fn leased(&self) -> usize {
        self.inner.leased.load(Ordering::Relaxed)
    }

    /// Claim up to `want` threads without blocking. The lease holds
    /// `min(want, free)` threads — possibly zero — and releases them on
    /// drop.
    pub fn try_acquire(&self, want: usize) -> GateLease {
        let mut current = self.inner.leased.load(Ordering::Relaxed);
        loop {
            let free = self.inner.total.saturating_sub(current);
            let take = want.min(free);
            if take == 0 {
                return GateLease { gate: self.clone(), granted: 0 };
            }
            match self.inner.leased.compare_exchange_weak(
                current,
                current + take,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return GateLease { gate: self.clone(), granted: take },
                Err(seen) => current = seen,
            }
        }
    }
}

/// A granted share of a [`WorkerGate`]; threads return to the gate when
/// the lease drops.
#[derive(Debug)]
pub struct GateLease {
    gate: WorkerGate,
    granted: usize,
}

impl GateLease {
    /// How many threads this lease holds (0 = run inline).
    pub fn granted(&self) -> usize {
        self.granted
    }
}

impl Drop for GateLease {
    fn drop(&mut self) {
        if self.granted > 0 {
            self.gate.inner.leased.fetch_sub(self.granted, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn partial_grants_and_release() {
        let gate = WorkerGate::new(4);
        let a = gate.try_acquire(3);
        assert_eq!(a.granted(), 3);
        let b = gate.try_acquire(3);
        assert_eq!(b.granted(), 1, "only the remainder is granted");
        let c = gate.try_acquire(2);
        assert_eq!(c.granted(), 0, "exhausted gate grants zero, never blocks");
        assert_eq!(gate.leased(), 4);
        drop(a);
        assert_eq!(gate.leased(), 1);
        let d = gate.try_acquire(8);
        assert_eq!(d.granted(), 3, "released threads are reusable");
    }

    #[test]
    fn zero_total_always_inline() {
        let gate = WorkerGate::new(0);
        assert_eq!(gate.try_acquire(4).granted(), 0);
    }

    #[test]
    fn clones_share_the_meter() {
        let gate = WorkerGate::new(2);
        let lease = gate.clone().try_acquire(2);
        assert_eq!(gate.leased(), 2);
        assert_eq!(gate.try_acquire(1).granted(), 0);
        drop(lease);
        assert_eq!(gate.leased(), 0);
    }

    #[test]
    fn concurrent_acquisition_never_exceeds_total() {
        let gate = WorkerGate::new(8);
        std::thread::scope(|s| {
            for _ in 0..16 {
                let gate = gate.clone();
                s.spawn(move || {
                    for _ in 0..200 {
                        let lease = gate.try_acquire(3);
                        assert!(gate.leased() <= gate.total());
                        drop(lease);
                    }
                });
            }
        });
        assert_eq!(gate.leased(), 0);
    }
}
