//! # audb-exec
//!
//! Partition-parallel execution runtime for AU-relation operators.
//!
//! Uncertain-data operators decompose cleanly into independent
//! partitions (U-relation-style processing à la Antova et al.): the join
//! planner's hash buckets and sweep candidate blocks, and aggregation's
//! group partitions, are all embarrassingly parallel. This crate
//! provides the three pieces the query layer builds on:
//!
//! * [`Partitioner`] — splits an index space `0..n` into contiguous
//!   *morsels* (work units) sized for the worker count;
//! * [`Executor`] — a std-only scoped thread pool
//!   ([`std::thread::scope`]) that runs a fallible producer over every
//!   morsel, workers claiming morsels from a shared atomic cursor;
//! * the **deterministic ordered-merge collector** inside
//!   [`Executor::run`]: each morsel's output lands in its own slot and
//!   slots are concatenated in morsel order, so the merged output is
//!   *byte-identical* to running the same producer sequentially over
//!   `0..n` — for any worker count and any morsel size;
//! * the **sharded-reduce driver** [`Executor::hash_merge_sorted`]
//!   (module [`reduce`]): the parallel backend of relation
//!   normalization — scatter rows into key-hash shards, hash-merge and
//!   sort each shard independently, k-way-merge the disjoint sorted
//!   runs back into the canonical global order;
//! * the **sharded pipeline driver** [`Executor::run_shards`] +
//!   [`ShardSource`] (module [`pipeline`]): run a whole fused
//!   operator chain per contiguous base-table shard, so chains of
//!   row-local operators pay a single merge at the pipeline breaker
//!   instead of one per operator.
//!
//! No external dependencies beyond `audb_core` (the shared governance
//! primitives), no unsafe, no work stealing beyond the shared cursor. A
//! worker count of 1 (or a single morsel) bypasses the pool's threads
//! and runs inline on the caller's thread, making the sequential path
//! near-zero-overhead and trivially identical.
//!
//! ## Fault tolerance & governance
//!
//! Every driver guarantees a query either completes, returns a
//! structured [`audb_core::ExecError`], or is cancelled — never wedging
//! the pool:
//!
//! * producer panics are caught per morsel and surface as
//!   [`audb_core::ExecError::WorkerPanic`]; result slots are
//!   poison-tolerant one-shot cells, so a panicking worker cannot wedge
//!   its siblings and the executor is immediately reusable;
//! * an attached [`audb_core::CancelToken`] is checked at every morsel
//!   boundary (cancellation and wall-clock deadlines);
//! * an attached [`audb_core::Budget`] is charged by the expanding
//!   operators (the sharded-reduce scatter here; join probes and
//!   pipeline chains in the query layer).
//!
//! The feature-gated [`faults`] module injects deterministic panics,
//! errors, delays, and cancellations at "morsel N of driver D" for the
//! robustness property tests.
//!
//! This crate denies stray `unwrap`/`expect` in non-test code
//! (`clippy::unwrap_used`/`expect_used`): a runtime that promises panic
//! containment must not panic on its own control paths.

#![warn(clippy::unwrap_used, clippy::expect_used)]

#[cfg(feature = "faults")]
pub mod faults;
pub mod gate;
pub mod partition;
pub mod pipeline;
pub mod pool;
pub mod reduce;

pub use gate::WorkerGate;
pub use partition::Partitioner;
pub use pipeline::ShardSource;
pub use pool::Executor;
