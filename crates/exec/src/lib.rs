//! # audb-exec
//!
//! Partition-parallel execution runtime for AU-relation operators.
//!
//! Uncertain-data operators decompose cleanly into independent
//! partitions (U-relation-style processing à la Antova et al.): the join
//! planner's hash buckets and sweep candidate blocks, and aggregation's
//! group partitions, are all embarrassingly parallel. This crate
//! provides the three pieces the query layer builds on:
//!
//! * [`Partitioner`] — splits an index space `0..n` into contiguous
//!   *morsels* (work units) sized for the worker count;
//! * [`Executor`] — a std-only scoped thread pool
//!   ([`std::thread::scope`]) that runs a fallible producer over every
//!   morsel, workers claiming morsels from a shared atomic cursor;
//! * the **deterministic ordered-merge collector** inside
//!   [`Executor::run`]: each morsel's output lands in its own slot and
//!   slots are concatenated in morsel order, so the merged output is
//!   *byte-identical* to running the same producer sequentially over
//!   `0..n` — for any worker count and any morsel size;
//! * the **sharded-reduce driver** [`Executor::hash_merge_sorted`]
//!   (module [`reduce`]): the parallel backend of relation
//!   normalization — scatter rows into key-hash shards, hash-merge and
//!   sort each shard independently, k-way-merge the disjoint sorted
//!   runs back into the canonical global order;
//! * the **sharded pipeline driver** [`Executor::run_shards`] +
//!   [`ShardSource`] (module [`pipeline`]): run a whole fused
//!   operator chain per contiguous base-table shard, so chains of
//!   row-local operators pay a single merge at the pipeline breaker
//!   instead of one per operator.
//!
//! No external dependencies, no unsafe, no work stealing beyond the
//! shared cursor. A worker count of 1 (or a single morsel) bypasses the
//! pool entirely and runs inline on the caller's thread, making the
//! sequential path zero-overhead and trivially identical.

pub mod partition;
pub mod pipeline;
pub mod pool;
pub mod reduce;

pub use partition::Partitioner;
pub use pipeline::ShardSource;
pub use pool::Executor;
