//! Deterministic fault injection for robustness tests (feature
//! `faults`).
//!
//! A [`FaultPlan`] names checkpoints as **"morsel N of driver D"**:
//! every [`Executor::run`](crate::Executor::run) entry on the
//! installing thread increments the plan's driver sequence number, and
//! every morsel of that entry — regardless of which worker claims it —
//! passes a checkpoint addressed `(D, N)` before its producer runs.
//! Driver entries happen sequentially on the query thread, so the
//! addressing is deterministic for a fixed configuration (workers,
//! shards, partitioner): re-running the same query under the same plan
//! fires the same faults at the same points.
//!
//! Plans are installed **thread-locally** ([`with_plan`]) so parallel
//! test cases cannot contaminate each other; worker threads see the
//! plan through the checkpoint closure, not the thread-local.
//!
//! Four fault kinds:
//!
//! * [`FaultKind::Panic`] — `panic!` inside the producer's
//!   `catch_unwind` boundary, exercising panic containment;
//! * [`FaultKind::Error`] — return [`ExecError::Injected`], exercising
//!   the structured error path;
//! * [`FaultKind::Delay`] — sleep, exercising deadlines and straggler
//!   behavior (alone, it must not change results);
//! * [`FaultKind::Cancel`] — trip the run's [`CancelToken`]
//!   (if one is attached), exercising cooperative cancellation from
//!   *inside* a query.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use audb_core::{CancelToken, ExecError};

/// What an armed checkpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the morsel's `catch_unwind` boundary.
    Panic,
    /// Return [`ExecError::Injected`] from the producer.
    Error,
    /// Sleep before running the producer (results must be unchanged).
    Delay(Duration),
    /// Cancel the run's [`CancelToken`], if one is attached.
    Cancel,
}

/// One armed checkpoint: fire `kind` at morsel `morsel` of driver
/// `driver` (`None` = any driver), at most `remaining` times.
#[derive(Debug)]
pub struct FaultRule {
    driver: Option<usize>,
    morsel: usize,
    kind: FaultKind,
    /// Fires left; `u64::MAX` means unlimited (persistent rule).
    remaining: AtomicU64,
}

impl FaultRule {
    /// Fire once, at morsel `morsel` of exactly driver `driver`.
    pub fn once(driver: usize, morsel: usize, kind: FaultKind) -> Self {
        FaultRule { driver: Some(driver), morsel, kind, remaining: AtomicU64::new(1) }
    }

    /// Fire every time any driver reaches morsel `morsel`.
    pub fn persistent(morsel: usize, kind: FaultKind) -> Self {
        FaultRule { driver: None, morsel, kind, remaining: AtomicU64::new(u64::MAX) }
    }

    /// Claim one firing; `false` when the rule is spent. Unlimited
    /// rules never decrement (always claimable).
    fn try_claim(&self) -> bool {
        let mut left = self.remaining.load(Ordering::Relaxed);
        loop {
            if left == u64::MAX {
                return true;
            }
            if left == 0 {
                return false;
            }
            match self.remaining.compare_exchange_weak(
                left,
                left - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(observed) => left = observed,
            }
        }
    }
}

/// A set of armed fault rules plus the driver sequence counter.
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    drivers: AtomicUsize,
    fired: AtomicU64,
}

impl FaultPlan {
    pub fn new(rules: Vec<FaultRule>) -> Arc<Self> {
        Arc::new(FaultPlan { rules, drivers: AtomicUsize::new(0), fired: AtomicU64::new(0) })
    }

    /// How many executor entries this plan has observed.
    pub fn drivers_entered(&self) -> usize {
        self.drivers.load(Ordering::Relaxed)
    }

    /// How many faults have fired.
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }

    /// Called once per [`Executor::run`](crate::Executor::run) entry on
    /// the installing thread: the returned sequence number addresses
    /// this entry's morsels.
    pub(crate) fn enter_driver(&self) -> usize {
        self.drivers.fetch_add(1, Ordering::Relaxed)
    }

    /// The per-morsel checkpoint, run inside the morsel's
    /// `catch_unwind` boundary before its producer.
    pub(crate) fn checkpoint(
        &self,
        driver: usize,
        morsel: usize,
        cancel: Option<&CancelToken>,
    ) -> Result<(), ExecError> {
        for rule in &self.rules {
            let hit = rule.morsel == morsel && rule.driver.is_none_or(|d| d == driver);
            if !hit || !rule.try_claim() {
                continue;
            }
            self.fired.fetch_add(1, Ordering::Relaxed);
            match rule.kind {
                FaultKind::Panic => panic!("injected panic at driver {driver} morsel {morsel}"),
                FaultKind::Error => return Err(ExecError::Injected { driver, morsel }),
                FaultKind::Delay(d) => std::thread::sleep(d),
                FaultKind::Cancel => {
                    if let Some(token) = cancel {
                        token.cancel();
                    }
                }
            }
        }
        Ok(())
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<FaultPlan>>> = const { RefCell::new(None) };
}

/// Install `plan` for the duration of `f` on the current thread.
/// Nested installs shadow and restore; the previous plan is restored
/// even if `f` panics.
pub fn with_plan<R>(plan: Arc<FaultPlan>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<FaultPlan>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let prev = CURRENT.with(|c| c.borrow_mut().replace(plan));
    let _restore = Restore(prev);
    f()
}

/// The pool's hook: the installed plan (if any) with a freshly claimed
/// driver sequence number.
pub(crate) fn driver_context() -> Option<(Arc<FaultPlan>, usize)> {
    let plan = CURRENT.with(|c| c.borrow().clone())?;
    let driver = plan.enter_driver();
    Some((plan, driver))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::partition::Partitioner;
    use crate::pool::Executor;
    use std::ops::Range;

    fn produce(r: Range<usize>, out: &mut Vec<usize>) -> Result<(), String> {
        out.extend(r);
        Ok(())
    }

    fn forced(workers: usize) -> Executor {
        Executor::new(workers).with_partitioner(Partitioner {
            min_morsel: 1,
            morsels_per_worker: 3,
            min_rows_per_worker: 0,
        })
    }

    #[test]
    fn injected_error_is_structured_and_scoped() {
        let plan = FaultPlan::new(vec![FaultRule::once(0, 2, FaultKind::Error)]);
        let err = with_plan(plan.clone(), || forced(4).run(100, produce)).unwrap_err();
        assert_eq!(err, String::from(ExecError::Injected { driver: 0, morsel: 2 }));
        assert_eq!(plan.fired(), 1);
        // outside with_plan, the same run succeeds (plan uninstalled)
        assert_eq!(forced(4).run(100, produce).unwrap().len(), 100);
    }

    #[test]
    fn injected_panic_is_contained() {
        let plan = FaultPlan::new(vec![FaultRule::once(0, 1, FaultKind::Panic)]);
        let exec = forced(2);
        let err = with_plan(plan, || exec.run(100, produce)).unwrap_err();
        assert!(err.contains("worker panicked"), "got: {err}");
        assert!(err.contains("injected panic at driver 0 morsel 1"), "got: {err}");
        // pool reusable
        assert_eq!(exec.run(100, produce).unwrap().len(), 100);
    }

    #[test]
    fn miss_addressed_fault_never_fires() {
        let plan = FaultPlan::new(vec![FaultRule::once(99, 0, FaultKind::Panic)]);
        let out = with_plan(plan.clone(), || forced(4).run(100, produce)).unwrap();
        assert_eq!(out.len(), 100);
        assert_eq!(plan.fired(), 0);
        assert!(plan.drivers_entered() >= 1);
    }

    #[test]
    fn cancel_fault_trips_the_attached_token() {
        let plan = FaultPlan::new(vec![FaultRule::once(0, 0, FaultKind::Cancel)]);
        let exec = forced(1).with_cancel(CancelToken::new());
        // morsel 0's checkpoint cancels; morsel 1's boundary check trips
        let err = with_plan(plan, || exec.run(100, produce)).unwrap_err();
        assert_eq!(err, String::from(ExecError::Cancelled));
    }

    #[test]
    fn once_rules_are_spent_after_one_fire() {
        let rule = FaultRule::once(0, 0, FaultKind::Error);
        assert!(rule.try_claim());
        assert!(!rule.try_claim());
        let persistent = FaultRule::persistent(0, FaultKind::Error);
        assert!(persistent.try_claim());
        assert!(persistent.try_claim());
    }
}
