//! Theorem 8 as a property: evaluating a query natively over an AU-DB
//! equals encoding the database relationally, running the rewritten
//! query on the deterministic engine, and decoding —
//! `Q(D) = Dec(Q_merge(rewr(Q))(Enc(D)))` — on randomized inputs and
//! plans.

use proptest::prelude::*;

use audb::prelude::*;

fn range_strategy() -> impl Strategy<Value = RangeValue> {
    proptest::collection::vec(-4i64..8, 3).prop_map(|mut v| {
        v.sort_unstable();
        RangeValue::range(v[0], v[1], v[2])
    })
}

fn annot_strategy() -> impl Strategy<Value = AuAnnot> {
    proptest::collection::vec(0u64..3, 3).prop_map(|mut v| {
        v.sort_unstable();
        AuAnnot::triple(v[0], v[1], (v[2]).max(1))
    })
}

fn au_relation_strategy(arity: usize) -> impl Strategy<Value = AuRelation> {
    proptest::collection::vec(
        (proptest::collection::vec(range_strategy(), arity), annot_strategy()),
        0..5,
    )
    .prop_map(move |rows| {
        let schema = Schema::new((0..arity).map(|i| format!("c{i}")).collect());
        AuRelation::from_rows(
            schema,
            rows.into_iter().map(|(rs, k)| (RangeTuple::new(rs), k)).collect(),
        )
    })
}

fn au_db_strategy() -> impl Strategy<Value = AuDatabase> {
    (au_relation_strategy(2), au_relation_strategy(2)).prop_map(|(r, s)| {
        let mut db = AuDatabase::new();
        db.insert("r", r);
        db.insert("s", s);
        db
    })
}

fn query_strategy() -> impl Strategy<Value = Query> {
    let leaf = prop_oneof![Just(table("r")), Just(table("s"))];
    leaf.prop_recursive(3, 10, 2, |inner| {
        prop_oneof![
            (inner.clone(), -2i64..6).prop_map(|(q, k)| q.select(col(0).leq(lit(k)))),
            (inner.clone(), -2i64..6).prop_map(|(q, k)| q.select(col(1).eq(lit(k)))),
            inner.clone().prop_map(|q| q.project(vec![(col(1), "a"), (col(0).sub(col(1)), "b")])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| {
                a.join_on(b, col(0).eq(col(2))).project(vec![(col(0), "a"), (col(3), "b")])
            }),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.union(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.difference(b)),
            inner.clone().prop_map(|q| q.distinct()),
            inner.clone().prop_map(|q| {
                q.aggregate(
                    vec![0],
                    vec![AggSpec::new(AggFunc::Sum, col(1), "s"), AggSpec::count("c")],
                )
                .project(vec![(col(0), "a"), (col(1), "b")])
            }),
            inner.clone().prop_map(|q| {
                q.aggregate(
                    vec![1],
                    vec![
                        AggSpec::new(AggFunc::Min, col(0), "lo"),
                        AggSpec::new(AggFunc::Max, col(0), "hi"),
                    ],
                )
                .project(vec![(col(1), "a"), (col(2), "b")])
            }),
            inner.prop_map(|q| {
                q.aggregate(
                    vec![],
                    vec![
                        AggSpec::new(AggFunc::Avg, col(1), "a"),
                        AggSpec::new(AggFunc::Sum, col(0), "s"),
                    ],
                )
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn native_equals_rewrite(db in au_db_strategy(), q in query_strategy()) {
        let native = eval_au(&db, &q, &AuConfig::precise()).expect("native");
        let via = eval_via_rewrite(&db, &q).expect("rewrite");
        prop_assert_eq!(&native, &via, "mismatch for {}", q);
    }

    /// Enc/Dec is lossless on arbitrary AU-relations (Theorem 8's
    /// invertibility part).
    #[test]
    fn enc_dec_roundtrip(rel in au_relation_strategy(3)) {
        use audb::query::rewrite::{dec_relation, enc_relation};
        let enc = enc_relation(&rel);
        let dec = dec_relation(&enc, &rel.schema).unwrap();
        prop_assert_eq!(dec, rel);
    }
}
