//! Property-based validation of the paper's central results: for random
//! incomplete databases and random `RA^agg` queries, the AU-DB query
//! result *bounds* the query result in every possible world
//! (Theorems 3, 4, 6; Corollary 2) — decided exactly by the max-flow
//! tuple-matching checker (Definitions 15–17). The same properties are
//! asserted for the compressed evaluation paths (Lemmas 10.1, 10.2).

use proptest::prelude::*;

use audb::incomplete::relation_bounds_world;
use audb::prelude::*;

// ---------------------------------------------------------------------------
// generators
// ---------------------------------------------------------------------------

/// A small x-tuple over (group, value) pairs with tiny domains so worlds
/// stay enumerable and collisions are common.
fn xtuple_strategy() -> impl Strategy<Value = XTuple> {
    let alt = (0i64..4, -3i64..6)
        .prop_map(|(g, v)| [Value::Int(g), Value::Int(v)].into_iter().collect::<Tuple>());
    (proptest::collection::vec(alt, 1..3), prop_oneof![Just(1.0f64), Just(0.5f64)]).prop_map(
        |(alts, total)| {
            let p = total / alts.len() as f64;
            let mut weighted: Vec<(Tuple, f64)> = alts.into_iter().map(|t| (t, p)).collect();
            weighted[0].1 += 1e-9;
            let norm: f64 = weighted.iter().map(|(_, q)| q).sum::<f64>() / total;
            for w in weighted.iter_mut() {
                w.1 /= norm;
            }
            XTuple::new(weighted)
        },
    )
}

fn xdb_strategy() -> impl Strategy<Value = XDb> {
    (
        proptest::collection::vec(xtuple_strategy(), 0..4),
        proptest::collection::vec(xtuple_strategy(), 0..3),
    )
        .prop_map(|(r, s)| {
            let mut db = XDb::default();
            db.insert("r", XRelation::new(Schema::named(&["g", "v"]), r));
            db.insert("s", XRelation::new(Schema::named(&["g", "v"]), s));
            db
        })
}

/// Random `RA^agg` plans, all of output arity 2 so they compose freely.
fn query_strategy() -> impl Strategy<Value = Query> {
    let leaf = prop_oneof![Just(table("r")), Just(table("s"))];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            // selection on either column
            (inner.clone(), 0usize..2, -2i64..5, 0u8..4).prop_map(|(q, c, k, op)| {
                let pred = match op {
                    0 => col(c).leq(lit(k)),
                    1 => col(c).eq(lit(k)),
                    2 => col(c).gt(lit(k)),
                    _ => col(0).leq(col(1)),
                };
                q.select(pred)
            }),
            // projections keeping arity 2
            inner.clone().prop_map(|q| q.project(vec![(col(1), "a"), (col(0), "b")])),
            inner.clone().prop_map(|q| q.project(vec![(col(0), "a"), (col(0).add(col(1)), "b")])),
            // join on the first column, projected back to arity 2
            (inner.clone(), inner.clone()).prop_map(|(a, b)| {
                a.join_on(b, col(0).eq(col(2)))
                    .project(vec![(col(0), "g"), (col(1).add(col(3)), "v")])
            }),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.union(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.difference(b)),
            inner.clone().prop_map(|q| q.distinct()),
            // aggregation: group by g, sum + count
            inner.clone().prop_map(|q| {
                q.aggregate(vec![0], vec![AggSpec::new(AggFunc::Sum, col(1), "s")])
            }),
            inner.clone().prop_map(|q| {
                q.aggregate(vec![0], vec![AggSpec::new(AggFunc::Min, col(1), "m")])
                    .project(vec![(col(0), "g"), (col(1), "m")])
            }),
            // aggregation without group-by (padded back to arity 2)
            inner.prop_map(|q| {
                q.aggregate(
                    vec![],
                    vec![
                        AggSpec::new(AggFunc::Sum, col(1), "s"),
                        AggSpec::new(AggFunc::Max, col(0), "m"),
                    ],
                )
            }),
        ]
    })
}

// ---------------------------------------------------------------------------
// the property
// ---------------------------------------------------------------------------

fn check_bounds(db: &XDb, q: &Query, cfg: &AuConfig) -> Result<(), TestCaseError> {
    let Some(inc) = db.to_incomplete(512) else {
        return Ok(()); // too many worlds; skip
    };
    let au_in = db.to_au();
    let out = eval_au(&au_in, q, cfg).expect("AU evaluation");
    let exact = inc.eval(q).expect("possible-worlds evaluation");

    // Definition 17 condition (5): the result bounds every world
    for (i, w) in exact.worlds.iter().enumerate() {
        prop_assert!(
            relation_bounds_world(&out, w),
            "world {i} not bounded:\nworld: {w}\nAU result: {out}"
        );
    }
    // Definition 17 condition (6): the SGW is encoded exactly
    prop_assert_eq!(
        out.sg_world().normalized(),
        exact.sg_world().normalized(),
        "SGW not preserved"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Corollary 2 (precise evaluation).
    #[test]
    fn ra_agg_preserves_bounds_precise(db in xdb_strategy(), q in query_strategy()) {
        check_bounds(&db, &q, &AuConfig::precise())?;
    }

    /// Lemmas 10.1 / 10.2: the compressed paths still preserve bounds.
    #[test]
    fn ra_agg_preserves_bounds_compressed(db in xdb_strategy(), q in query_strategy()) {
        check_bounds(&db, &q, &AuConfig::compressed(2))?;
    }

    /// The translations bound their inputs (Theorem 10) even before any
    /// query runs.
    #[test]
    fn translation_bounds_input(db in xdb_strategy()) {
        if let Some(inc) = db.to_incomplete(512) {
            let au = db.to_au();
            prop_assert!(database_bounds_incomplete(&au, &inc));
        }
    }
}

/// Deterministic regression of the classic difference pitfall
/// (Section 8.2): pointwise monus would under-report; ours must bound.
#[test]
fn difference_bounds_regression() {
    let mut db = XDb::default();
    db.insert(
        "r",
        XRelation::new(
            Schema::named(&["g", "v"]),
            vec![XTuple::certain([1i64, 0].into_iter().collect())],
        ),
    );
    db.insert(
        "s",
        XRelation::new(
            Schema::named(&["g", "v"]),
            vec![XTuple::new(vec![
                ([1i64, 0].into_iter().collect(), 0.5),
                ([2i64, 0].into_iter().collect(), 0.5),
            ])],
        ),
    );
    let q = table("r").difference(table("s"));
    check_bounds(&db, &q, &AuConfig::precise()).unwrap();
}
