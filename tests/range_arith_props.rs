//! Property tests for range-annotated arithmetic (Definition 9) over
//! negative and mixed `Int`/`Float` operands: `Mul`/`Div`/`Neg`/`Sub`
//! results keep `lb ≤ sg ≤ ub` in the domain's total order, the sg
//! component equals deterministic evaluation on the sg tuple, and every
//! world assembled from operand bounds is contained.
//!
//! The containment check is `value_eq`-weak at the `Int k` vs
//! `Float k.0` representation boundary: the total order places the two
//! zero-width-apart representations adjacently (`Int` first), so a
//! world result can numerically *tie* a bound while carrying the other
//! numeric type. The engine's comparison predicates (`Expr::Eq`,
//! `leq`/`lt`) are `value_eq`-aware at exactly these boundaries, and
//! the sg-widening in `eval_range` keeps the triple itself ordered —
//! both pinned down here. (Before that widening, `Neg` of
//! `[Int 1 / Int 1 / Float 1.0]` returned `InvalidRange` outright.)

use proptest::prelude::*;

use audb::core::{col, EvalError, Expr, RangeValue, Value};

/// Negative, positive, and fractional values of both numeric types.
fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-6i64..7).prop_map(Value::Int),
        (-24i64..25).prop_map(|q| Value::float(q as f64 / 4.0)),
    ]
}

/// Any three values, sorted, make a valid range (sg is the median).
fn range_strategy() -> impl Strategy<Value = RangeValue> {
    (value_strategy(), value_strategy(), value_strategy()).prop_map(|(a, b, c)| {
        let mut v = [a, b, c];
        v.sort();
        let [lb, sg, ub] = v;
        RangeValue::new(lb, sg, ub).expect("sorted triple is a valid range")
    })
}

/// Containment up to the cross-type representation boundary.
fn bounds_weak(r: &RangeValue, v: &Value) -> bool {
    r.bounds(v) || v.value_eq(&r.lb) || v.value_eq(&r.ub)
}

/// The arithmetic under test, plus compositions that chain the widened
/// bounds back into another operator.
fn op_strategy() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(col(0).sub(col(1))),
        Just(col(0).mul(col(1))),
        Just(col(0).div(col(1))),
        Just(col(0).neg()),
        Just(col(0).neg().sub(col(1))),
        Just(col(0).mul(col(1)).sub(col(0))),
        Just(col(0).sub(col(1)).mul(col(1))),
        Just(col(0).neg().mul(col(1).neg())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn range_arithmetic_ordered_and_bounds_worlds(
        x in range_strategy(),
        y in range_strategy(),
        e in op_strategy(),
    ) {
        let tuple = [x.clone(), y.clone()];
        let out = match e.eval_range(&tuple) {
            Ok(out) => out,
            // division is undefined when a denominator may be zero
            Err(EvalError::RangeDivisionSpansZero) => return Ok(()),
            Err(other) => {
                return Err(TestCaseError::fail(format!(
                    "{e} on {x}, {y}: unexpected error {other}"
                )))
            }
        };

        // lb ≤ sg ≤ ub in the domain's total order
        prop_assert!(
            out.lb <= out.sg && out.sg <= out.ub,
            "{} on {}, {}: unordered result [{} / {} / {}]",
            e, x, y, out.lb, out.sg, out.ub
        );

        // the sg component is exactly deterministic evaluation on sg
        let sg_det = e.eval(&[x.sg.clone(), y.sg.clone()]).unwrap();
        prop_assert!(
            out.sg == sg_det,
            "{} on {}, {}: sg {} != det {}", e, x, y, out.sg, sg_det
        );

        // every world assembled from operand bounds is contained
        for a in [&x.lb, &x.sg, &x.ub] {
            for b in [&y.lb, &y.sg, &y.ub] {
                let v = e.eval(&[a.clone(), b.clone()]).unwrap();
                prop_assert!(
                    bounds_weak(&out, &v),
                    "{} on {}, {}: world ({}, {}) -> {} escapes [{} / {} / {}]",
                    e, x, y, a, b, v, out.lb, out.sg, out.ub
                );
            }
        }
    }
}

/// The exact regression shapes that used to return `InvalidRange`
/// before the sg-widening: numeric ties whose representations escape
/// the corner bounds in the total order.
#[test]
fn mixed_type_tie_regressions() {
    // Neg of [Int 1 / Int 1 / Float 1.0]: -sg = Int(-1) sorts below the
    // corner lb Float(-1.0)
    let r = RangeValue::new(Value::Int(1), Value::Int(1), Value::float(1.0)).unwrap();
    let out = col(0).neg().eval_range(std::slice::from_ref(&r)).unwrap();
    assert_eq!(out.sg, Value::Int(-1));
    assert!(out.lb <= out.sg && out.sg <= out.ub);

    // Mul by a negative certain value: sg Float(6.0) ties corner Int(6)
    let x = RangeValue::new(Value::Int(-2), Value::float(-2.0), Value::Int(1)).unwrap();
    let y = RangeValue::certain(Value::Int(-3));
    let out = col(0).mul(col(1)).eval_range(&[x, y]).unwrap();
    assert_eq!(out.sg, Value::float(6.0));
    assert!(out.lb <= out.sg && out.sg <= out.ub);

    // Sub where the corner lb Float(1.0) sorts above sg Int(1)
    let x = RangeValue::new(Value::Int(1), Value::Int(1), Value::Int(2)).unwrap();
    let y = RangeValue::new(Value::Int(0), Value::Int(0), Value::float(0.0)).unwrap();
    let out = col(0).sub(col(1)).eval_range(&[x, y]).unwrap();
    assert_eq!(out.sg, Value::Int(1));
    assert!(out.lb <= out.sg && out.sg <= out.ub);
}
