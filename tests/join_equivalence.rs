//! Equivalence of the interval-indexed join engine with the nested-loop
//! reference semantics: for randomized range-annotated inputs and every
//! predicate class the planner distinguishes (hash equi-join,
//! interval-comparison sweep, nested-loop fallback), the planned join
//! must produce — after `normalize()` — exactly the same `AuRelation`
//! as `nested_loop_join_au`.

use proptest::prelude::*;

use audb::core::{col, Expr};
use audb::prelude::*;
use audb::query::au::join_au;
use audb::query::au::nested_loop_join_au;
use audb::query::planner::{classify, JoinStrategy};

// ---------------------------------------------------------------------------
// generators
// ---------------------------------------------------------------------------

/// Range values mixing certain ints, proper ranges, domain-wide
/// unknowns, and floats (whose `value_eq`/total-order mismatch is the
/// nastiest equivalence edge case).
fn range_value_strategy() -> impl Strategy<Value = RangeValue> {
    prop_oneof![
        (-4i64..5).prop_map(|v| RangeValue::certain(Value::Int(v))),
        (-4i64..5, 0i64..3, 0i64..3).prop_map(|(a, d1, d2)| RangeValue::range(a - d1, a, a + d2)),
        (-4i64..5).prop_map(|v| RangeValue::unknown(Value::Int(v))),
        (-4i64..5).prop_map(|v| RangeValue::certain(Value::float(v as f64))),
    ]
}

fn annot_strategy() -> impl Strategy<Value = AuAnnot> {
    (0u64..2, 0u64..3, 0u64..3).prop_map(|(a, b, c)| AuAnnot::triple(a, a + b, a + b + c))
}

/// A small arity-2 AU-relation.
fn au_relation_strategy(
    name0: &'static str,
    name1: &'static str,
) -> impl Strategy<Value = AuRelation> {
    proptest::collection::vec(
        (range_value_strategy(), range_value_strategy(), annot_strategy()),
        0..8,
    )
    .prop_map(move |rows| {
        AuRelation::from_rows(
            Schema::named(&[name0, name1]),
            rows.into_iter().map(|(a, b, k)| (RangeTuple::new(vec![a, b]), k)).collect(),
        )
    })
}

/// One predicate from each planner class (and the cross product).
fn predicate_strategy() -> impl Strategy<Value = Option<Expr>> {
    prop_oneof![
        // hash equi-join class
        Just(Some(col(0).eq(col(2)))),
        Just(Some(col(1).eq(col(3)))),
        Just(Some(col(0).eq(col(2)).and(col(1).eq(col(3))))),
        // interval comparison class, all four operators and both
        // operand orders
        Just(Some(col(0).leq(col(2)))),
        Just(Some(col(0).lt(col(3)))),
        Just(Some(col(1).geq(col(2)))),
        Just(Some(col(3).gt(col(0)))),
        Just(Some(col(2).leq(col(1)))),
        // nested-loop fallback class
        Just(Some(col(0).add(col(1)).leq(col(2)))),
        Just(Some(col(0).eq(col(2)).or(col(1).eq(col(3))))),
        Just(None),
    ]
}

// ---------------------------------------------------------------------------
// the property
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// The planner-selected strategy is undetectable from the result.
    #[test]
    fn planned_join_equals_nested_loop(
        l in au_relation_strategy("a", "b"),
        r in au_relation_strategy("c", "d"),
        pred in predicate_strategy()
    ) {
        let planned = join_au(&l, &r, pred.as_ref()).expect("planned join");
        let reference = nested_loop_join_au(&l, &r, pred.as_ref()).expect("nested loop");
        prop_assert_eq!(
            planned.normalized(),
            reference.normalized(),
            "strategy {:?} diverged for predicate {:?}",
            classify(pred.as_ref(), 2),
            pred
        );
    }
}

// ---------------------------------------------------------------------------
// targeted deterministic cases
// ---------------------------------------------------------------------------

/// Every predicate class the property above exercises really maps to the
/// intended strategy (guards against the property silently testing
/// nested-loop against itself).
#[test]
fn predicate_classes_cover_all_strategies() {
    assert_eq!(classify(Some(&col(0).eq(col(2))), 2), JoinStrategy::HashEqui(vec![(0, 0)]));
    assert!(matches!(
        classify(Some(&col(0).leq(col(2))), 2),
        JoinStrategy::IntervalComparison { .. }
    ));
    assert_eq!(classify(Some(&col(0).add(col(1)).leq(col(2))), 2), JoinStrategy::NestedLoop);
    assert_eq!(classify(None, 2), JoinStrategy::NestedLoop);
}

/// Int/Float keys: `value_eq`-equal but distinct in the total order —
/// the hash path must agree with the nested loop's range semantics.
#[test]
fn mixed_numeric_keys_match_nested_loop() {
    let l = AuRelation::from_rows(
        Schema::named(&["a"]),
        vec![
            (RangeTuple::new(vec![RangeValue::certain(Value::Int(2))]), AuAnnot::certain_one()),
            (RangeTuple::new(vec![RangeValue::certain(Value::float(3.0))]), AuAnnot::certain_one()),
        ],
    );
    let r = AuRelation::from_rows(
        Schema::named(&["b"]),
        vec![
            (RangeTuple::new(vec![RangeValue::certain(Value::float(2.0))]), AuAnnot::certain_one()),
            (RangeTuple::new(vec![RangeValue::certain(Value::Int(3))]), AuAnnot::certain_one()),
        ],
    );
    let pred = col(0).eq(col(1));
    let planned = join_au(&l, &r, Some(&pred)).unwrap().normalized();
    let reference = nested_loop_join_au(&l, &r, Some(&pred)).unwrap().normalized();
    assert_eq!(planned, reference);
}

/// The deterministic engine's planner paths agree with predicates
/// written so the classifier cannot fire (forcing the nested loop).
#[test]
fn det_planned_paths_match_obfuscated_fallback() {
    let mut db = Database::new();
    let rows = |vals: &[(i64, i64)]| -> Vec<(Tuple, u64)> {
        vals.iter().map(|(a, b)| ([*a, *b].into_iter().collect(), 1)).collect()
    };
    db.insert(
        "r",
        Relation::from_rows(
            Schema::named(&["a", "b"]),
            rows(&[(1, 10), (2, 20), (3, 30), (2, 21)]),
        ),
    );
    db.insert(
        "s",
        Relation::from_rows(Schema::named(&["c", "d"]), rows(&[(2, 5), (3, 7), (9, 1)])),
    );

    // equality: hash path vs leq∧geq (undetectable)
    let q_hash = table("r").join_on(table("s"), col(0).eq(col(2)));
    let q_slow = table("r").join_on(table("s"), col(0).leq(col(2)).and(col(0).geq(col(2))));
    assert_eq!(eval_det(&db, &q_hash).unwrap(), eval_det(&db, &q_slow).unwrap());

    // comparison: sweep path vs ¬(>) (undetectable)
    let q_sweep = table("r").join_on(table("s"), col(0).leq(col(2)));
    let q_slow = table("r").join_on(table("s"), col(0).gt(col(2)).not());
    assert_eq!(eval_det(&db, &q_sweep).unwrap(), eval_det(&db, &q_slow).unwrap());
}
