//! Allocation-pressure pins for the retained row-view fallback path.
//!
//! The columnar refactor keeps [`audb_storage::RangeTuple`] as the
//! row-view API; the nested-loop join and projection fallbacks still
//! materialize row tuples. This binary installs a counting global
//! allocator and pins the per-call allocation budget of
//! `project`/`concat` and their buffer-reusing `_into` variants, so a
//! regression back to the old clone-then-extend shape (two allocations
//! per concat) fails loudly.
//!
//! All assertions live in ONE `#[test]` — the counter is process-global
//! and concurrent test threads would otherwise race it.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use audb_core::{RangeValue, Value};
use audb_storage::{RangeTuple, Tuple};

struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates verbatim to `System`; the counter has no effect on
// the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation calls (alloc + realloc) performed by `f`.
fn allocs_in<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let out = f();
    (ALLOC_CALLS.load(Ordering::Relaxed) - before, out)
}

fn int_tuple(vs: &[i64]) -> Tuple {
    vs.iter().copied().collect()
}

fn int_range_tuple(vs: &[i64]) -> RangeTuple {
    RangeTuple::new(vs.iter().map(|v| RangeValue::certain(Value::Int(*v))).collect())
}

#[test]
fn tuple_ops_allocation_budget() {
    let ta = int_tuple(&[1, 2, 3]);
    let tb = int_tuple(&[4, 5]);
    let ra = int_range_tuple(&[1, 2, 3]);
    let rb = int_range_tuple(&[4, 5]);

    // Int values carry no heap data, so the Vec is the only allocation
    // each of these may make. The pre-refactor `concat` cost two
    // (clone, then a reallocating extend).
    let (n, t) = allocs_in(|| ta.concat(&tb));
    assert_eq!(t.values().len(), 5);
    assert_eq!(n, 1, "Tuple::concat must allocate exactly once");

    let (n, t) = allocs_in(|| ta.project(&[2, 0]));
    assert_eq!(t, int_tuple(&[3, 1]));
    assert_eq!(n, 1, "Tuple::project must allocate exactly once");

    let (n, t) = allocs_in(|| ra.concat(&rb));
    assert_eq!(t.arity(), 5);
    assert_eq!(n, 1, "RangeTuple::concat must allocate exactly once");

    let (n, t) = allocs_in(|| ra.project(&[1]));
    assert_eq!(t, int_range_tuple(&[2]));
    assert_eq!(n, 1, "RangeTuple::project must allocate exactly once");

    // Warmed buffers: the `_into` variants are allocation-free once the
    // buffer has capacity — this is the shape the nested-loop join hot
    // path relies on across the inner loop.
    let mut buf = Vec::with_capacity(8);
    let mut rbuf: Vec<RangeValue> = Vec::with_capacity(8);
    ta.concat_into(&tb, &mut buf); // warm
    ra.concat_into(&rb, &mut rbuf);

    let (n, ()) = allocs_in(|| {
        for _ in 0..16 {
            ta.concat_into(&tb, &mut buf);
            ra.concat_into(&rb, &mut rbuf);
        }
    });
    assert_eq!(n, 0, "warm concat_into must not allocate");
    assert_eq!(buf, int_tuple(&[1, 2, 3, 4, 5]).0);
    assert_eq!(rbuf, int_range_tuple(&[1, 2, 3, 4, 5]).0);

    let (n, ()) = allocs_in(|| {
        for _ in 0..16 {
            ta.project_into(&[0, 2], &mut buf);
            ra.project_into(&[0, 2], &mut rbuf);
        }
    });
    assert_eq!(n, 0, "warm project_into must not allocate");
    assert_eq!(buf, int_tuple(&[1, 3]).0);
    assert_eq!(rbuf, int_range_tuple(&[1, 3]).0);
}
