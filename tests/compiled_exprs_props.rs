//! Differential property suite for the compiled expression backend
//! (`audb_core::Program`): random `Expr` trees over mixed `Int`/`Float`
//! columns must evaluate **identically** to the tree-walking
//! interpreters — same values, same `EvalError` classification — at
//! every level the programs are wired in:
//!
//! * direct row evaluation (`eval_range` / `eval`) and the op-at-a-time
//!   batch entry point (including its row-major error selection);
//! * the AU fused-chain evaluator (`AuConfig::compiled` on vs off)
//!   across workers {1, 2, 4} × shards {1, 3, 8}, byte-identical
//!   relations and identical errors;
//! * the deterministic chain mirror and the rewrite middleware's
//!   `Enc → σ/π/⋈ → Dec` spine.

use proptest::prelude::*;

use audb::core::program::Program;
use audb::core::RangeBatch;
use audb::prelude::*;
use audb::query::table;

/// Worker × shard grid the ISSUE pins down for the compiled backend.
const WORKERS: [usize; 3] = [1, 2, 4];
const SHARDS: [usize; 3] = [1, 3, 8];

// ---------------------------------------------------------------------------
// generators
// ---------------------------------------------------------------------------

/// Mixed-representation numeric values: `Int` and quarter-step `Float`,
/// overlapping so cross-type numeric ties (the sg-widening cases) are
/// common.
fn mixed_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-5i64..6).prop_map(Value::Int),
        (-20i64..21).prop_map(|q| Value::float(q as f64 / 4.0)),
    ]
}

/// Any three mixed values, sorted, make a valid range (sg = median).
fn mixed_range() -> impl Strategy<Value = RangeValue> {
    (mixed_value(), mixed_value(), mixed_value()).prop_map(|(a, b, c)| {
        let mut v = [a, b, c];
        v.sort();
        let [lb, sg, ub] = v;
        RangeValue::new(lb, sg, ub).expect("sorted triple is a valid range")
    })
}

fn annot_strategy() -> impl Strategy<Value = AuAnnot> {
    (0u64..2, 0u64..3, 0u64..3).prop_map(|(a, b, c)| AuAnnot::triple(a, a + b, a + b + c))
}

/// A two-column AU relation over mixed Int/Float ranges.
fn au_relation_strategy(max_rows: usize) -> impl Strategy<Value = AuRelation> {
    proptest::collection::vec((mixed_range(), mixed_range(), annot_strategy()), 0..max_rows)
        .prop_map(|rows| {
            AuRelation::from_rows(
                Schema::named(&["A", "B"]),
                rows.into_iter().map(|(a, b, k)| (RangeTuple::new(vec![a, b]), k)).collect(),
            )
        })
}

/// Random numeric expression trees over columns 0..2: arithmetic
/// (including `Div`, whose spans-zero guard exercises the error paths),
/// `If` over comparisons, and the `MakeUncertain` lens.
fn num_expr_strategy() -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0usize..2).prop_map(col),
        (-5i64..6).prop_map(lit),
        (-12i64..13).prop_map(|q| lit(q as f64 / 4.0)),
    ]
    .boxed();
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.add(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.sub(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.mul(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.div(b)),
            inner.clone().prop_map(Expr::neg),
            (inner.clone(), inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(a, b, t, e)| Expr::if_then_else(a.leq(b), t, e)),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(l, s, u)| Expr::make_uncertain(l, s, u)),
        ]
    })
}

/// Random predicates: every comparison operator over random numeric
/// subtrees, composed with `And`/`Or`/`Not`.
fn pred_strategy() -> BoxedStrategy<Expr> {
    let e = num_expr_strategy();
    let cmp = prop_oneof![
        (e.clone(), e.clone()).prop_map(|(a, b)| a.leq(b)),
        (e.clone(), e.clone()).prop_map(|(a, b)| a.lt(b)),
        (e.clone(), e.clone()).prop_map(|(a, b)| a.geq(b)),
        (e.clone(), e.clone()).prop_map(|(a, b)| a.gt(b)),
        (e.clone(), e.clone()).prop_map(|(a, b)| a.eq(b)),
        (e.clone(), e.clone()).prop_map(|(a, b)| a.neq(b)),
    ]
    .boxed();
    cmp.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(Expr::not),
        ]
    })
}

/// Interpreted (oracle) and compiled pipeline configurations for one
/// workers × shards point. The adaptive parallelism floor is disabled
/// so tiny proptest inputs really shard and really run multi-worker.
fn cfg(compiled: bool, workers: usize, shards: usize) -> AuConfig {
    AuConfig {
        compiled,
        workers: Some(workers),
        shards: Some(shards),
        min_rows_per_worker: Some(0),
        ..AuConfig::default()
    }
}

// ---------------------------------------------------------------------------
// properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    /// Direct evaluation: the compiled range and det programs agree
    /// with the interpreters on every row — `Ok` values and `Err`
    /// classifications alike — and the batch entry point returns the
    /// same columns (or the error of the earliest erroring row, which
    /// is what row-at-a-time evaluation surfaces first).
    #[test]
    fn compiled_matches_interpreter_rowwise_and_batched(
        e in num_expr_strategy(),
        rows in proptest::collection::vec((mixed_range(), mixed_range()), 1..6),
    ) {
        let tuples: Vec<Vec<RangeValue>> =
            rows.into_iter().map(|(a, b)| vec![a, b]).collect();
        let prog = Program::compile_range(&e);
        let mut regs = Vec::new();
        for t in &tuples {
            let interp = e.eval_range(t);
            let compiled = prog.eval_range(t, &mut regs);
            prop_assert_eq!(&compiled, &interp, "row mismatch for {} on {:?}", &e, t);
        }

        // batch = row-at-a-time, including the row-major error choice
        let refs: Vec<&[RangeValue]> = tuples.iter().map(|t| t.as_slice()).collect();
        let mut batch = RangeBatch::default();
        let got = prog.eval_range_batch(&refs, &mut batch);
        let expected_err = tuples.iter().find_map(|t| e.eval_range(t).err());
        match (got, expected_err) {
            (Ok(()), None) => {
                for (i, t) in tuples.iter().enumerate() {
                    prop_assert_eq!(
                        batch.output(&prog, 0, i, t),
                        &e.eval_range(t).unwrap(),
                        "batch output mismatch for {} at row {}", &e, i
                    );
                }
            }
            (Err(got), Some(want)) => {
                prop_assert_eq!(&got, &want, "batch error classification for {}", &e);
            }
            (got, want) => {
                return Err(TestCaseError::fail(format!(
                    "{e}: batch {got:?} but row-wise {want:?}"
                )));
            }
        }

        // deterministic lowering agrees on the sg world
        let dprog = Program::compile_det(&e);
        let mut dregs = Vec::new();
        for t in &tuples {
            let sg: Vec<Value> = t.iter().map(|r| r.sg.clone()).collect();
            let interp = e.eval(&sg);
            let compiled = dprog.eval_det(&sg, &mut dregs);
            prop_assert_eq!(&compiled, &interp, "det mismatch for {} on {:?}", &e, &sg);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Fused AU chains: compiled programs produce byte-identical
    /// relations — and identical `EvalError`s — to the interpreted
    /// chain for every workers × shards point, across select-only,
    /// project-only (batched op-at-a-time), and mixed chains.
    #[test]
    fn au_chains_compiled_identical_to_interpreted(
        rel in au_relation_strategy(14),
        pred in pred_strategy(),
        proj in num_expr_strategy(),
    ) {
        let mut db = AuDatabase::new();
        db.insert("t", rel);
        let queries = [
            table("t").select(pred.clone()),
            table("t").project(vec![(proj.clone(), "p"), (col(0), "a")]),
            table("t")
                .select(pred.clone())
                .project(vec![(proj.clone(), "p"), (col(1), "b")])
                .select(col(0).leq(lit(100i64))),
        ];
        for q in &queries {
            for w in WORKERS {
                for s in SHARDS {
                    let interp = eval_au(&db, q, &cfg(false, w, s));
                    let compiled = eval_au(&db, q, &cfg(true, w, s));
                    prop_assert_eq!(
                        &compiled, &interp,
                        "workers = {}, shards = {}, q = {}", w, s, q
                    );
                }
            }
        }
    }

    /// Probe chains: a fused join's compiled re-check predicate and
    /// post-join compiled stages equal the interpreted chain.
    #[test]
    fn au_probe_chains_compiled_identical(
        l in au_relation_strategy(10),
        r in au_relation_strategy(10),
        proj in num_expr_strategy(),
    ) {
        let mut db = AuDatabase::new();
        db.insert("t1", l);
        db.insert("t2", r);
        let q = table("t1")
            .select(col(1).geq(lit(-3i64)))
            .join_on(table("t2"), col(0).eq(col(2)))
            .select(col(1).leq(col(3)))
            .project(vec![(proj, "p"), (col(2), "c")]);
        for w in WORKERS {
            for s in SHARDS {
                let interp = eval_au(&db, &q, &cfg(false, w, s));
                let compiled = eval_au(&db, &q, &cfg(true, w, s));
                prop_assert_eq!(&compiled, &interp, "workers = {}, shards = {}", w, s);
            }
        }
    }

    /// The deterministic chain mirror and the rewrite middleware's
    /// fused `Enc → σ/π/⋈ → Dec` spine: compiled equals interpreted on
    /// both engines, for every worker count.
    #[test]
    fn det_and_rewrite_spine_compiled_identical(
        rel1 in au_relation_strategy(10),
        rel2 in au_relation_strategy(10),
    ) {
        use audb::query::det::eval_det_opts;
        use audb::query::rewrite::RewriteSession;

        let q = table("t1")
            .select(col(1).geq(lit(-2i64)))
            .join_on(table("t2"), col(0).eq(col(2)))
            .project(vec![(col(0), "x"), (col(1).add(col(3)), "y")]);

        // det engine over the SG worlds
        let mut det_db = Database::new();
        det_db.insert("t1", rel1.sg_world());
        det_db.insert("t2", rel2.sg_world());
        for w in WORKERS {
            for s in SHARDS {
                let interp = eval_det_opts(&det_db, &q, &Executor::new(w), true, Some(s), false);
                let compiled = eval_det_opts(&det_db, &q, &Executor::new(w), true, Some(s), true);
                prop_assert_eq!(&compiled, &interp, "det, workers = {}, shards = {}", w, s);
            }
        }

        // rewrite spine over the AU relations
        let mut db = AuDatabase::new();
        db.insert("t1", rel1);
        db.insert("t2", rel2);
        let reference =
            RewriteSession::new(&db).with_workers(Some(1)).with_compiled(false).eval(&q);
        for w in WORKERS {
            let compiled =
                RewriteSession::new(&db).with_workers(Some(w)).with_compiled(true).eval(&q);
            prop_assert_eq!(&compiled, &reference, "rewrite spine, workers = {}", w);
        }
    }
}
