//! Differential properties of columnar execution: for every query in
//! the corpus, evaluation with `AuConfig::columnar` (typed vector
//! kernels over column lanes) must be **byte-identical** to the
//! row-major path (`columnar: false`) — same rows, same order, same
//! annotations — at every worker × shard combination, including the
//! error case: a query that fails must fail with the identical error
//! (the earliest poisoned row's) on both paths.
//!
//! Corpus: fig13/fig14/fig16-shaped query spines over proptest-generated
//! mixed-type relations (strings and floats force the boxed lane,
//! sentinels force `Null`-carrying cells), the paper's microbenchmark
//! join tables at 10k rows, and the TPC-H workload with PDBench-style
//! injected uncertainty.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;

use audb::core::col;
use audb::prelude::*;
use audb::query::table;
use audb::workloads::{
    gen_tpch, inject_uncertainty, micro_join_db, tpch_queries, MicroConfig, TpchConfig,
};

/// Worker counts the ISSUE pins down; 7 exceeds most CI machines.
const WORKERS: [usize; 4] = [1, 2, 4, 7];
/// Forced shard counts for the fused-chain driver.
const SHARDS: [usize; 3] = [1, 3, 8];

/// Pipelined config with forced worker/shard counts and the columnar
/// knob explicit. The adaptive parallelism floor is disabled so tiny
/// proptest inputs really run multi-worker.
fn cfg(columnar: bool, workers: usize, shards: usize) -> AuConfig {
    AuConfig {
        workers: Some(workers),
        shards: Some(shards),
        min_rows_per_worker: Some(0),
        columnar,
        ..AuConfig::default()
    }
}

/// Columnar evaluation is the default.
#[test]
fn columnar_is_the_default() {
    assert!(AuConfig::default().columnar);
}

/// Assert row-major and columnar agree (result or error) for every
/// workers × shards combination, anchored on the sequential row-major
/// reference.
fn assert_differential(db: &AuDatabase, q: &Query, ctx: &str) {
    let reference = eval_au(db, q, &cfg(false, 1, 1));
    for w in WORKERS {
        for s in SHARDS {
            let got = eval_au(db, q, &cfg(true, w, s));
            assert_eq!(got, reference, "columnar: {ctx}, workers = {w}, shards = {s}, q = {q}");
        }
    }
}

// ---------------------------------------------------------------------------
// fig-shaped query corpus over mixed-type relations (proptest)
// ---------------------------------------------------------------------------

/// Values spanning every lane class: homogeneous Int cells (typed
/// lane), floats (typed Float lane / mixed Int⊗Float boxing), strings
/// and `unknown` sentinels (boxed lane with `Null`/`MinVal`/`MaxVal`
/// components).
fn mixed_value_strategy() -> impl Strategy<Value = RangeValue> {
    prop_oneof![
        (-4i64..5).prop_map(|v| RangeValue::certain(Value::Int(v))),
        (-4i64..5, 0i64..3, 0i64..3).prop_map(|(a, d1, d2)| RangeValue::range(a - d1, a, a + d2)),
        (-8i64..9).prop_map(|v| RangeValue::certain(Value::float(v as f64 * 0.5))),
        (0i64..3).prop_map(|v| RangeValue::certain(Value::str(format!("s{v}")))),
        (-4i64..5).prop_map(|v| RangeValue::unknown(Value::Int(v))),
    ]
}

/// Homogeneous-Int values: both columns classify as typed lanes, so the
/// vector kernels (not the boxed fallback) carry the whole query.
fn int_value_strategy() -> impl Strategy<Value = RangeValue> {
    prop_oneof![
        (-4i64..5).prop_map(|v| RangeValue::certain(Value::Int(v))),
        (-4i64..5, 0i64..3, 0i64..3).prop_map(|(a, d1, d2)| RangeValue::range(a - d1, a, a + d2)),
    ]
}

fn annot_strategy() -> impl Strategy<Value = AuAnnot> {
    (0u64..2, 0u64..3, 0u64..3).prop_map(|(a, b, c)| AuAnnot::triple(a, a + b, a + b + c))
}

fn relation_strategy<S: Strategy<Value = RangeValue>>(
    values: impl Fn() -> S,
    name0: &'static str,
    name1: &'static str,
    max_rows: usize,
) -> impl Strategy<Value = AuRelation> {
    proptest::collection::vec((values(), values(), annot_strategy()), 0..max_rows).prop_map(
        move |rows| {
            AuRelation::from_rows(
                Schema::named(&[name0, name1]),
                rows.into_iter().map(|(a, b, k)| (RangeTuple::new(vec![a, b]), k)).collect(),
            )
        },
    )
}

/// The fig13/fig14/fig16 query shapes: batchable select/project chains
/// (the columnar kernels' home turf), probe chains with every planner
/// strategy (columnar interval indexes), and breakers around fused
/// chains.
fn fig_queries() -> Vec<Query> {
    let spine = table("t1")
        .select(col(1).geq(lit(0i64)))
        .join_on(table("t2"), col(0).eq(col(2)))
        .project(vec![(col(0).add(col(3)), "x"), (col(1), "y")]);
    vec![
        spine,
        // batchable chain: arithmetic + comparison kernels end to end
        table("t1")
            .project(vec![(col(0), "a"), (col(1).mul(lit(2i64)), "b")])
            .select(col(1).gt(lit(-2i64)))
            .project(vec![(col(0).add(col(1)), "s")]),
        // select-only chain (normal-form-preserving delivery)
        table("t1").select(col(0).leq(col(1)).and(col(1).neq(lit(3i64)))),
        // comparison-predicate and cross joins under a projection
        table("t1")
            .join_on(table("t2"), col(0).leq(col(2)))
            .project(vec![(col(1), "a"), (col(3), "b")]),
        table("t1").cross(table("t2")).select(col(0).neq(col(3))),
        // fig13-shaped aggregate over a fused chain
        table("t1")
            .select(col(0).leq(lit(3i64)))
            .project(vec![(col(0), "g"), (col(1).add(col(0)), "v")])
            .aggregate(vec![0], vec![AggSpec::new(AggFunc::Sum, col(1), "s"), AggSpec::count("c")]),
        // set operators with fused chains on both sides
        table("t1")
            .select(col(0).gt(lit(0i64)))
            .union(table("t1").project(vec![(col(0), "A"), (col(1), "B")])),
        table("t1").difference(table("t2").project(vec![(col(0), "A"), (col(1), "B")])),
        table("t1").project(vec![(col(0), "a")]).distinct(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Mixed-type columns: strings, floats, and sentinels force the
    /// boxed lane (and mixed Int⊗Float comparisons inside kernels), and
    /// arithmetic over non-numeric cells poisons rows — results and
    /// errors must match the row path exactly.
    #[test]
    fn columnar_identical_on_mixed_type_corpus(
        t1 in relation_strategy(mixed_value_strategy, "A", "B", 14),
        t2 in relation_strategy(mixed_value_strategy, "C", "D", 14),
    ) {
        let mut db = AuDatabase::new();
        db.insert("t1", t1);
        db.insert("t2", t2);
        for q in fig_queries() {
            assert_differential(&db, &q, "mixed");
        }
    }

    /// Homogeneous Int columns: the typed kernels carry every op.
    #[test]
    fn columnar_identical_on_int_corpus(
        t1 in relation_strategy(int_value_strategy, "A", "B", 14),
        t2 in relation_strategy(int_value_strategy, "C", "D", 14),
    ) {
        let mut db = AuDatabase::new();
        db.insert("t1", t1);
        db.insert("t2", t2);
        for q in fig_queries() {
            assert_differential(&db, &q, "int");
        }
    }

    /// Kernel demotion boundary: values near `i64::MAX` overflow the
    /// checked Int kernels (which must demote the op and float-promote
    /// exactly like the scalar combinators), and division columns
    /// spanning zero poison rows — the reported error and its position
    /// must be identical on both paths.
    #[test]
    fn columnar_identical_at_demotion_and_poison_boundaries(
        rows in proptest::collection::vec((-3i64..4, 0u8..4), 1..12),
    ) {
        let t1 = AuRelation::from_rows(
            Schema::named(&["A", "B"]),
            rows.iter()
                .map(|(v, kind)| {
                    let a = match kind {
                        0 => RangeValue::certain(Value::Int(i64::MAX - 1)),
                        1 => RangeValue::range(i64::MIN, i64::MIN + 1, 0),
                        2 => RangeValue::range(*v - 1, *v, *v + 1),
                        _ => RangeValue::certain(Value::Int(*v)),
                    };
                    (RangeTuple::new(vec![a, RangeValue::certain(Value::Int(*v))]), AuAnnot::certain_one())
                })
                .collect(),
        );
        let mut db = AuDatabase::new();
        db.insert("t1", t1.clone());
        db.insert("t2", t1);
        // overflow-demoting arithmetic; division whose divisor may span
        // or hit zero (poisoned rows)
        for q in [
            table("t1").project(vec![(col(0).add(lit(2i64)), "x"), (col(0).mul(col(1)), "y")]),
            table("t1").project(vec![(col(1).div(col(0)), "q")]),
            table("t1").select(col(0).sub(lit(1i64)).leq(col(1))),
        ] {
            assert_differential(&db, &q, "boundary");
        }
    }
}

// ---------------------------------------------------------------------------
// the paper's workloads at scale: microbenchmark tables and TPC-H
// ---------------------------------------------------------------------------

/// fig14/fig16-shaped join tables at 10k rows: the microbenchmark
/// generator's homogeneous-Int spine with 3% attribute uncertainty.
#[test]
fn columnar_identical_on_micro_join_corpus() {
    let (db, _) =
        micro_join_db(&MicroConfig::new(10_000, 3).uncertainty(0.03).range_frac(0.02).seed(71));
    let queries = [
        // batchable arithmetic chain over t1 (pure kernel path)
        table("t1")
            .select(col(1).lt(lit(800i64)))
            .project(vec![(col(0), "k"), (col(1).add(col(2)), "s"), (col(2).mul(lit(3i64)), "m")])
            .select(col(1).geq(lit(0i64))),
        // selective spine through an equi-join probe
        table("t1")
            .select(col(1).lt(lit(100i64)))
            .join_on(table("t2"), col(0).eq(col(3)))
            .project(vec![(col(0), "k"), (col(1).add(col(4)), "v")]),
    ];
    for q in &queries {
        assert_differential(&db, q, "micro");
    }
}

/// TPC-H with PDBench-style injected uncertainty: the realistic-schema
/// end of the corpus (strings, floats, and Int keys in one database).
#[test]
fn columnar_identical_on_tpch_corpus() {
    let det = gen_tpch(TpchConfig::new(0.1, 21));
    let xdb = inject_uncertainty(&det, 0.02, 6, 22);
    let db = xdb.to_au();
    for (name, q) in tpch_queries().into_iter().take(2) {
        assert_differential(&db, &q, name);
    }
}
