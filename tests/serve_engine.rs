//! The serving engine's tier-1 contract: concurrent execution through
//! the `Engine` returns exactly what a direct evaluation on the pinned
//! snapshot returns; prepared-plan reuse is invisible in the bytes
//! (the coherence property test); admission saturation sheds
//! structurally instead of hanging; epochs pin mid-flight publishes;
//! and per-class governance knobs map onto real verdicts.

use proptest::prelude::*;
use std::time::Duration;

use audb::core::{col, lit, BudgetSpec, EvalError, ExecError};
use audb::prelude::*;
use audb::serve::{Class, ClassPolicy, Engine, EngineConfig, ServeError};
use audb::workloads::{micro_join_db, MicroConfig};

fn micro(rows: usize, seed: u64) -> AuDatabase {
    let cfg = MicroConfig {
        domain: rows.max(4) as i64,
        ..MicroConfig::new(rows, 3).uncertainty(0.2).range_frac(0.2).seed(seed)
    };
    micro_join_db(&cfg).0
}

/// select → join → project: the fused-chain shape the engine serves
/// most, touching the compiled-program cache at several stages.
fn join_query() -> Query {
    table("t1")
        .select(col(1).geq(lit(1i64)))
        .join_on(table("t2"), col(0).eq(col(3)))
        .project(vec![(col(0), "k"), (col(1).add(col(4)), "v")])
}

fn agg_query() -> Query {
    table("t1").aggregate(vec![0], vec![AggSpec::new(AggFunc::Sum, col(1), "s")])
}

fn small_config() -> EngineConfig {
    EngineConfig {
        eval: AuConfig { workers: Some(2), ..AuConfig::default() },
        worker_threads: 2,
        ..EngineConfig::default()
    }
}

#[test]
fn concurrent_results_match_direct_evaluation() {
    let db = micro(300, 11);
    let engine = Engine::new(db.clone(), small_config());
    let queries = [join_query(), agg_query(), table("t2").select(col(2).lt(lit(150i64)))];
    let direct: Vec<AuRelation> =
        queries.iter().map(|q| eval_au(&db, q, &small_config().eval).unwrap()).collect();
    std::thread::scope(|s| {
        for _client in 0..6 {
            s.spawn(|| {
                for (q, want) in queries.iter().zip(&direct) {
                    let resp = engine.execute(q, Class::Interactive).unwrap();
                    assert_eq!(&resp.relation, want);
                    assert_eq!(resp.epoch, 0);
                }
            });
        }
    });
    let stats = engine.stats();
    let interactive = &stats.classes[Class::Interactive as usize];
    assert_eq!(interactive.submitted, 18);
    assert_eq!(interactive.completed, 18);
    assert_eq!(interactive.shed, 0);
    assert_eq!(stats.metrics.counter("admitted"), Some(18));
}

#[test]
fn sql_and_algebra_share_the_prepared_table_keyspace() {
    let db = micro(50, 3);
    let engine = Engine::new(db.clone(), small_config());
    let sql = "SELECT a0, a1 FROM t1 WHERE a1 >= 1";
    let first = engine.execute_sql(sql, Class::Interactive).unwrap();
    assert!(!first.prepared_hit);
    let second = engine.execute_sql(sql, Class::Interactive).unwrap();
    assert!(second.prepared_hit, "same text, same epoch: warm");
    assert_eq!(first.relation, second.relation);
    let direct = eval_au(&db, &parse_sql(sql, &db).unwrap(), &small_config().eval).unwrap();
    assert_eq!(second.relation, direct);
    assert_eq!(engine.stats().prepared_plans, 1);
}

#[test]
fn parse_errors_are_final_query_verdicts() {
    let engine = Engine::new(micro(10, 1), small_config());
    let err = engine.execute_sql("SELECT nope FROM missing", Class::Interactive).unwrap_err();
    assert!(matches!(err, ServeError::Query(_)), "{err}");
    // the engine stays live
    engine.execute(&join_query(), Class::Interactive).unwrap();
}

#[test]
fn saturated_class_sheds_structurally() {
    let mut config = small_config();
    config.classes[Class::Batch as usize] = ClassPolicy {
        max_concurrent: 1,
        queue_cap: 0,
        queue_timeout: Duration::from_millis(10),
        timeout: None,
        budget: None,
    };
    let engine = Engine::new(micro(40, 5), config);
    // two threads fight over the single batch slot; with zero queue
    // capacity, whichever finds it busy is shed immediately — either
    // side may win any given round, so both count their verdicts
    let flood = |attempts: usize| {
        let (mut ok, mut shed) = (0u64, 0u64);
        for _ in 0..attempts {
            match engine.execute(&join_query(), Class::Batch) {
                Ok(_) => ok += 1,
                Err(ServeError::Overloaded { class, retry_after, .. }) => {
                    assert_eq!(class, Class::Batch);
                    assert_eq!(retry_after, Duration::from_millis(10));
                    shed += 1;
                }
                Err(other) => panic!("unexpected verdict: {other}"),
            }
        }
        (ok, shed)
    };
    let barrier = std::sync::Barrier::new(2);
    let ((ok_a, shed_a), (ok_b, shed_b)) = std::thread::scope(|s| {
        let handle = s.spawn(|| {
            barrier.wait();
            flood(200)
        });
        barrier.wait();
        let mine = flood(200);
        (handle.join().unwrap(), mine)
    });
    assert!(shed_a + shed_b > 0, "zero queue capacity must shed under contention");
    assert!(ok_a + ok_b > 0, "the slot holder keeps completing");
    let stats = engine.stats();
    let batch = &stats.classes[Class::Batch as usize];
    assert_eq!(batch.completed, ok_a + ok_b);
    assert_eq!(batch.shed, shed_a + shed_b);
    assert_eq!(batch.shed + batch.completed, batch.submitted);
    assert_eq!(stats.metrics.counter("shed"), Some(batch.shed));
}

#[test]
fn class_budget_maps_to_final_rejection() {
    let mut config = small_config();
    config.classes[Class::BestEffort as usize].budget = Some(BudgetSpec::rows(1));
    let engine = Engine::new(micro(200, 7), config);
    let err = engine.execute(&join_query(), Class::BestEffort).unwrap_err();
    match err {
        ServeError::Rejected(EvalError::Exec(e)) => {
            assert!(matches!(e, ExecError::BudgetExceeded { .. }), "{e}");
        }
        other => panic!("expected a budget rejection, got {other}"),
    }
    // never retried: resource verdicts are final
    let stats = engine.stats();
    let be = &stats.classes[Class::BestEffort as usize];
    assert_eq!(be.retried, 0);
    assert_eq!(be.rejected, 1);
    // interactive (no budget) still serves the same query
    engine.execute(&join_query(), Class::Interactive).unwrap();
}

#[test]
fn publish_pins_epochs_and_evicts_prepared_plans() {
    let db0 = micro(120, 21);
    let db1 = micro(120, 22);
    let engine = Engine::new(db0.clone(), small_config());
    let q = join_query();

    let warm0 = {
        engine.execute(&q, Class::Interactive).unwrap();
        engine.execute(&q, Class::Interactive).unwrap()
    };
    assert!(warm0.prepared_hit);
    assert_eq!(warm0.epoch, 0);
    assert_eq!(warm0.relation, eval_au(&db0, &q, &small_config().eval).unwrap());

    // a reader pins epoch 0 across the publish
    let pinned = engine.snapshot();
    let epoch1 = engine.publish(db1.clone());
    assert_eq!(epoch1, 1);
    assert_eq!(engine.stats().prepared_plans, 0, "publish evicts the prepared table");
    assert_eq!(pinned.epoch(), 0);
    assert_eq!(eval_au(pinned.db(), &q, &small_config().eval).unwrap(), warm0.relation);

    let cold1 = engine.execute(&q, Class::Interactive).unwrap();
    assert!(!cold1.prepared_hit, "new epoch: the cached plan is gone");
    assert_eq!(cold1.epoch, 1);
    assert_eq!(cold1.relation, eval_au(&db1, &q, &small_config().eval).unwrap());
}

#[test]
fn shutdown_refuses_new_work() {
    let engine = Engine::new(micro(10, 9), small_config());
    engine.execute(&agg_query(), Class::Interactive).unwrap();
    engine.close();
    assert!(matches!(
        engine.execute(&agg_query(), Class::Interactive),
        Err(ServeError::ShuttingDown)
    ));
}

// ---------------------------------------------------------------------------
// Prepared-cache coherence (satellite): warm ≡ cold, on every epoch
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// A cached plan re-executed against a newly published epoch is
    /// byte-identical to a cold parse + plan + compile on that epoch,
    /// and the prepared table really is evicted on publish.
    #[test]
    fn prepared_cache_coherence(
        rows in 5usize..80,
        seed in 0u64..1000,
        uncert_pct in 0u64..50,
        pick in 0usize..3,
    ) {
        let cfg = MicroConfig {
            domain: rows.max(4) as i64,
            ..MicroConfig::new(rows, 3)
                .uncertainty(uncert_pct as f64 / 100.0)
                .range_frac(0.3)
                .seed(seed)
        };
        let db0 = micro_join_db(&cfg).0;
        let db1 = micro_join_db(&MicroConfig { seed: seed + 7, ..cfg }).0;
        let sql = [
            "SELECT a0, a1 FROM t1 WHERE a1 >= 1",
            "SELECT a0 FROM t2 WHERE a2 < 40",
            "SELECT a0, a1, a2 FROM t1 WHERE a0 >= 0 AND a2 >= 1",
        ][pick];
        let engine = Engine::new(db0.clone(), small_config());

        // epoch 0: cold fill, then warm hit — byte-identical to the
        // cache-bypassing cold path and to direct evaluation
        let fill = engine.execute_sql(sql, Class::Interactive).unwrap();
        prop_assert!(!fill.prepared_hit);
        let warm = engine.execute_sql(sql, Class::Interactive).unwrap();
        prop_assert!(warm.prepared_hit);
        let cold = engine.execute_sql_cold(sql, Class::Interactive).unwrap();
        prop_assert!(!cold.prepared_hit);
        prop_assert_eq!(&warm.relation, &cold.relation);
        let direct0 = eval_au(&db0, &parse_sql(sql, &db0).unwrap(), &small_config().eval).unwrap();
        prop_assert_eq!(&warm.relation, &direct0);

        // publish: eviction observable, then warm-after-publish equals
        // a cold compile on the new epoch
        engine.publish(db1.clone());
        prop_assert_eq!(engine.stats().prepared_plans, 0);
        let refill = engine.execute_sql(sql, Class::Interactive).unwrap();
        prop_assert!(!refill.prepared_hit, "publish evicted the plan");
        prop_assert_eq!(refill.epoch, 1);
        let warm1 = engine.execute_sql(sql, Class::Interactive).unwrap();
        prop_assert!(warm1.prepared_hit);
        let cold1 = engine.execute_sql_cold(sql, Class::Interactive).unwrap();
        prop_assert_eq!(&warm1.relation, &cold1.relation);
        let direct1 = eval_au(&db1, &parse_sql(sql, &db1).unwrap(), &small_config().eval).unwrap();
        prop_assert_eq!(&warm1.relation, &direct1);
    }
}
