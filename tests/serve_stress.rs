//! Concurrent fault-storm stress for the serving engine (feature
//! `faults`): N client threads hammer the engine with injected panics,
//! injected errors, and delays while a publisher swaps epochs
//! mid-flight. The load-bearing assertion: **every submission
//! resolves** — to a result byte-identical to direct evaluation on the
//! response's pinned epoch, or to a structured verdict — and the
//! engine serves correctly afterwards (no hang, no poisoned pool).

#![cfg(feature = "faults")]

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use audb::exec::faults::{with_plan, FaultKind, FaultPlan, FaultRule};
use audb::prelude::*;
use audb::serve::{
    BreakerPolicy, Class, ClassPolicy, Engine, EngineConfig, RetryPolicy, ServeError,
};
use audb::workloads::{micro_join_db, MicroConfig};

fn micro(rows: usize, seed: u64) -> AuDatabase {
    let cfg = MicroConfig {
        domain: rows.max(4) as i64,
        ..MicroConfig::new(rows, 3).uncertainty(0.2).range_frac(0.2).seed(seed)
    };
    micro_join_db(&cfg).0
}

fn queries() -> Vec<Query> {
    vec![
        table("t1")
            .select(col(1).geq(lit(1i64)))
            .join_on(table("t2"), col(0).eq(col(3)))
            .project(vec![(col(0), "k"), (col(1).add(col(4)), "v")]),
        table("t1").aggregate(vec![0], vec![AggSpec::new(AggFunc::Sum, col(1), "s")]),
        table("t2").select(col(2).lt(lit(100i64))),
    ]
}

fn stress_config() -> EngineConfig {
    EngineConfig {
        eval: AuConfig { workers: Some(2), ..AuConfig::default() },
        worker_threads: 4,
        classes: [
            ClassPolicy {
                max_concurrent: 4,
                queue_cap: 8,
                queue_timeout: Duration::from_millis(50),
                timeout: None,
                budget: None,
            },
            ClassPolicy {
                max_concurrent: 2,
                queue_cap: 4,
                queue_timeout: Duration::from_millis(50),
                timeout: None,
                budget: None,
            },
            ClassPolicy {
                max_concurrent: 1,
                queue_cap: 2,
                queue_timeout: Duration::from_millis(20),
                timeout: None,
                budget: None,
            },
        ],
        retry: RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(2),
        },
        breaker: BreakerPolicy::default(),
    }
}

#[test]
fn fault_storm_with_mid_flight_publishes_never_loses_a_query() {
    const CLIENTS: usize = 8;
    const ITERS: usize = 40;
    const PUBLISHES: usize = 20;

    let worlds: Vec<AuDatabase> = (0..4).map(|i| micro(150, 31 + i)).collect();
    let qs = queries();
    // expected result per (world, query), for pinned-epoch correctness
    let eval_cfg = stress_config().eval;
    let expected: Vec<Vec<AuRelation>> = worlds
        .iter()
        .map(|db| qs.iter().map(|q| eval_au(db, q, &eval_cfg).unwrap()).collect())
        .collect();

    let engine = Engine::new(worlds[0].clone(), stress_config());
    let done_publishing = AtomicBool::new(false);

    std::thread::scope(|s| {
        // the publisher swaps epochs mid-flight; epoch k serves worlds[k % 4]
        s.spawn(|| {
            for k in 1..=PUBLISHES {
                engine.publish(worlds[k % worlds.len()].clone());
                std::thread::sleep(Duration::from_millis(1));
            }
            done_publishing.store(true, Ordering::SeqCst);
        });

        for client in 0..CLIENTS {
            let engine = &engine;
            let qs = &qs;
            let expected = &expected;
            let n_worlds = worlds.len();
            s.spawn(move || {
                for i in 0..ITERS {
                    let q = &qs[(client + i) % qs.len()];
                    let class = Class::ALL[i % Class::ALL.len()];
                    let run = || engine.execute(q, class);
                    let verdict = match i % 5 {
                        // one panic, then the retry succeeds
                        0 => with_plan(
                            FaultPlan::new(vec![FaultRule::once(0, 0, FaultKind::Panic)]),
                            run,
                        ),
                        // one injected error, then the retry succeeds
                        1 => with_plan(
                            FaultPlan::new(vec![FaultRule::once(0, 0, FaultKind::Error)]),
                            run,
                        ),
                        // every attempt panics: retries exhaust, breakers trip
                        2 => with_plan(
                            FaultPlan::new(vec![FaultRule::persistent(0, FaultKind::Panic)]),
                            run,
                        ),
                        // a straggler delay: results must be unchanged
                        3 => with_plan(
                            FaultPlan::new(vec![FaultRule::once(
                                0,
                                0,
                                FaultKind::Delay(Duration::from_millis(2)),
                            )]),
                            run,
                        ),
                        _ => run(),
                    };
                    match verdict {
                        Ok(resp) => {
                            let world = &expected[resp.epoch as usize % n_worlds];
                            let want = &world[(client + i) % qs.len()];
                            assert_eq!(
                                &resp.relation, want,
                                "client {client} iter {i}: wrong bytes for epoch {}",
                                resp.epoch
                            );
                        }
                        Err(ServeError::Overloaded { .. }) => {}
                        Err(ServeError::Failed(EvalError::Exec(e))) => {
                            assert!(!e.is_resource_limit(), "only transient faults exhaust retries")
                        }
                        Err(other) => panic!("client {client} iter {i}: unexpected {other}"),
                    }
                }
            });
        }
    });
    assert!(done_publishing.load(Ordering::SeqCst));

    // accounting: every submission resolved to exactly one outcome
    let stats = engine.stats();
    for class in Class::ALL {
        let c = &stats.classes[class as usize];
        assert_eq!(
            c.submitted,
            c.completed + c.shed + c.failed + c.rejected,
            "class {}: {c:?}",
            class.name()
        );
    }
    let total: u64 = stats.classes.iter().map(|c| c.submitted).sum();
    assert_eq!(total, (CLIENTS * ITERS) as u64, "no submission vanished");
    // the storm really exercised the machinery
    assert!(stats.metrics.counter("worker_panics").unwrap_or(0) > 0);
    assert!(stats.metrics.counter("retries").unwrap_or(0) > 0);
    assert!(stats.metrics.counter("admitted").unwrap_or(0) > 0);

    // the engine stays live and correct after the storm
    let snap = engine.snapshot();
    let resp = engine.execute(&qs[0], Class::Interactive).unwrap();
    assert_eq!(resp.relation, eval_au(snap.db(), &qs[0], &eval_cfg).unwrap());
}

/// Deterministic breaker walk-through: persistent compiled-path faults
/// trip the plan's breaker; with the fault gone but the breaker open,
/// the plan serves correctly from the interpreted oracle; the cooldown
/// probe closes it again.
#[test]
fn breaker_trips_degrades_and_recovers() {
    let db = micro(80, 77);
    let mut config = stress_config();
    config.retry =
        RetryPolicy { max_retries: 0, base_backoff: Duration::ZERO, max_backoff: Duration::ZERO };
    config.breaker = BreakerPolicy { trip_after: 2, cooldown: Duration::from_millis(20) };
    let engine = Engine::new(db.clone(), config);
    let q = queries().remove(0);
    let want = eval_au(&db, &q, &stress_config().eval).unwrap();

    // two consecutive compiled-path faults trip the breaker
    for _ in 0..2 {
        let err =
            with_plan(FaultPlan::new(vec![FaultRule::persistent(0, FaultKind::Panic)]), || {
                engine.execute(&q, Class::Interactive)
            })
            .unwrap_err();
        assert!(matches!(err, ServeError::Failed(_)), "{err}");
    }
    let stats = engine.stats();
    assert_eq!(stats.metrics.counter("breaker_trips"), Some(1));

    // fault gone, breaker open: served correctly from the interpreter
    let resp = engine.execute(&q, Class::Interactive).unwrap();
    assert!(resp.breaker_degraded, "open breaker routes to the interpreted oracle");
    assert_eq!(resp.relation, want);

    // cooldown passes: the half-open probe succeeds and closes the breaker
    std::thread::sleep(Duration::from_millis(25));
    let resp = engine.execute(&q, Class::Interactive).unwrap();
    assert!(!resp.breaker_degraded, "successful probe closes the breaker");
    assert_eq!(resp.relation, want);
    let resp = engine.execute(&q, Class::Interactive).unwrap();
    assert!(!resp.breaker_degraded);
    assert_eq!(resp.relation, want);
}
