//! The observability layer's core contract: *watching a query must not
//! change it*. `eval_au_traced` has to return byte-identical results to
//! `eval_au` for every (workers × shards) combination, while the trace
//! it produces has to tell the truth — root-span cardinalities equal to
//! the materialized relation, planner strategies matching what the
//! planner would classify, fusion/fallback decisions with their
//! blocking reasons, and (under `--features faults`) injected faults
//! landing in the event log with the exact driver/morsel coordinates
//! the fault plan fired at.

use proptest::prelude::*;

use audb::core::{col, lit, Expr};
use audb::prelude::*;
use audb::query::table;

/// Worker and shard grids the ISSUE pins down.
const WORKERS: [usize; 4] = [1, 2, 4, 7];
const SHARDS: [usize; 3] = [1, 3, 8];

/// Forced worker/shard counts with the parallelism floor disabled, so
/// tiny proptest inputs really exercise multi-worker paths.
fn cfg_pipeline(workers: usize, shards: usize) -> AuConfig {
    AuConfig {
        workers: Some(workers),
        shards: Some(shards),
        min_rows_per_worker: Some(0),
        ..AuConfig::default()
    }
}

// ---------------------------------------------------------------------------
// generators (mirroring tests/exec_equivalence.rs)
// ---------------------------------------------------------------------------

fn range_value_strategy() -> impl Strategy<Value = RangeValue> {
    prop_oneof![
        (-4i64..5).prop_map(|v| RangeValue::certain(Value::Int(v))),
        (-4i64..5, 0i64..3, 0i64..3).prop_map(|(a, d1, d2)| RangeValue::range(a - d1, a, a + d2)),
        (-4i64..5).prop_map(|v| RangeValue::unknown(Value::Int(v))),
    ]
}

fn annot_strategy() -> impl Strategy<Value = AuAnnot> {
    (0u64..2, 0u64..3, 0u64..3).prop_map(|(a, b, c)| AuAnnot::triple(a, a + b, a + b + c))
}

fn au_relation_strategy(
    name0: &'static str,
    name1: &'static str,
    max_rows: usize,
) -> impl Strategy<Value = AuRelation> {
    proptest::collection::vec(
        (range_value_strategy(), range_value_strategy(), annot_strategy()),
        0..max_rows,
    )
    .prop_map(move |rows| {
        AuRelation::from_rows(
            Schema::named(&[name0, name1]),
            rows.into_iter().map(|(a, b, k)| (RangeTuple::new(vec![a, b]), k)).collect(),
        )
    })
}

/// Query shapes covering fused chains, breakers, and set operators.
fn trace_queries() -> Vec<Query> {
    vec![
        table("t1")
            .select(col(1).geq(lit(0i64)))
            .join_on(table("t2"), col(0).eq(col(2)))
            .project(vec![(col(0).add(col(3)), "x"), (col(1), "y")]),
        table("t1")
            .select(col(0).leq(lit(3i64)))
            .join_on(table("t2"), col(0).eq(col(2)))
            .project(vec![(col(0), "g"), (col(1).add(col(3)), "v")])
            .aggregate(vec![0], vec![AggSpec::new(AggFunc::Sum, col(1), "s")]),
        table("t1").difference(table("t2").project(vec![(col(0), "A"), (col(1), "B")])),
        table("t1").project(vec![(col(0), "a")]).distinct(),
    ]
}

// ---------------------------------------------------------------------------
// satellite: traced evaluation is observation-free
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// `eval_au_traced` returns a byte-identical relation to `eval_au`
    /// for every workers × shards shape, and the root span's
    /// rows_out/bytes_out equal the materialized relation's actual
    /// cardinality and estimated footprint.
    #[test]
    fn traced_result_identical_and_root_counters_exact(
        t1 in au_relation_strategy("A", "B", 12),
        t2 in au_relation_strategy("C", "D", 12),
    ) {
        let mut db = AuDatabase::new();
        db.insert("t1", t1);
        db.insert("t2", t2);
        for q in trace_queries() {
            for w in WORKERS {
                for s in SHARDS {
                    let cfg = cfg_pipeline(w, s);
                    let reference = eval_au(&db, &q, &cfg).unwrap();
                    let (traced, trace) = eval_au_traced(&db, &q, &cfg).unwrap();
                    prop_assert_eq!(
                        &traced, &reference,
                        "traced != untraced: workers = {}, shards = {}, q = {}", w, s, &q
                    );
                    prop_assert_eq!(trace.version, TRACE_SCHEMA_VERSION);
                    prop_assert_eq!(
                        trace.root.rows_out, Some(reference.len() as u64),
                        "root rows_out, workers = {}, shards = {}, q = {}", w, s, &q
                    );
                    prop_assert_eq!(
                        trace.root.bytes_out, Some(reference.estimated_bytes()),
                        "root bytes_out, workers = {}, shards = {}, q = {}", w, s, &q
                    );
                    // a clean run records no governance/fault events
                    prop_assert!(trace.events.is_empty(), "events = {:?}", &trace.events);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// explain content: strategy, fusion, compiled-vs-interpreted
// ---------------------------------------------------------------------------

/// Three tables shaped like the paper's experiment corpus: `t`
/// (fig13-style aggregation input), `t1`/`t2` (fig14-style join pair).
fn corpus_db() -> AuDatabase {
    let mk = |n: usize, key_mod: i64| {
        AuRelation::from_rows(
            Schema::named(&["k", "v"]),
            (0..n)
                .map(|i| {
                    let v = if i % 5 == 0 {
                        RangeValue::range(i as i64 - 1, i as i64, i as i64 + 2)
                    } else {
                        RangeValue::certain(Value::Int(i as i64))
                    };
                    (
                        RangeTuple::new(vec![
                            RangeValue::certain(Value::Int(i as i64 % key_mod)),
                            v,
                        ]),
                        AuAnnot::triple(1, 1, 1),
                    )
                })
                .collect(),
        )
    };
    let mut db = AuDatabase::new();
    db.insert("t", mk(200, 8));
    db.insert("t1", mk(120, 10));
    db.insert("t2", mk(90, 10));
    db
}

/// fig13-shaped aggregation: the trace reports the aggregate operator
/// with its group/agg detail and the compression knob.
#[test]
fn explain_reports_aggregate_breakdown() {
    let db = corpus_db();
    let q = table("t").aggregate(vec![0], vec![AggSpec::new(AggFunc::Sum, col(1), "s")]);
    let cfg = AuConfig { agg_compress: Some(25), ..AuConfig::default() };
    let ex = explain(&db, &q, &cfg).unwrap();
    let agg = ex.trace.root.find("aggregate").expect("aggregate span");
    assert_eq!(agg.attr("compress"), Some("25"));
    assert_eq!(agg.rows_in, Some(200));
    assert!(agg.rows_out.is_some() && agg.bytes_out.is_some());
    // the text renderer mentions the operator and the engine echo
    let text = ex.to_string();
    assert!(text.contains("aggregate"), "text:\n{text}");
    assert!(text.contains("engine:"), "text:\n{text}");
}

/// fig14-shaped joins: the planner strategy lands on the join span —
/// hash-equi for an equality predicate, interval-comparison for an
/// inequality, split-compress when the compressed path is forced.
#[test]
fn explain_reports_join_strategy() {
    let db = corpus_db();
    // operator-at-a-time so the join gets its own span (the pipelined
    // engine fuses a bare join into a chain, covered separately below)
    let op = AuConfig { pipeline: false, ..AuConfig::default() };
    let cases: [(Option<Expr>, AuConfig, &str); 3] = [
        (Some(col(0).eq(col(2))), op, "hash-equi"),
        (Some(col(0).leq(col(2))), op, "interval-comparison"),
        (Some(col(0).eq(col(2))), AuConfig { join_compress: Some(32), ..op }, "split-compress"),
    ];
    for (pred, cfg, want) in cases {
        let q = match &pred {
            Some(p) => table("t1").join_on(table("t2"), p.clone()),
            None => table("t1").cross(table("t2")),
        };
        let ex = explain(&db, &q, &cfg).unwrap();
        let join = ex.trace.root.find("join").expect("join span");
        assert_eq!(join.attr("strategy"), Some(want), "pred = {pred:?}");
        assert_eq!(join.rows_in, Some(120 + 90));
    }
}

/// A multi-join chain (fig16 shape): every join span carries a
/// strategy, and the pipelined run reports the fused chain with its
/// operator summary, shard count, and compiled-vs-interpreted flag.
#[test]
fn explain_reports_multi_join_and_fusion() {
    let db = corpus_db();
    let q = table("t")
        .join_on(table("t1"), col(0).eq(col(2)))
        .join_on(table("t2"), col(1).eq(col(4)))
        .select(col(0).geq(lit(0i64)))
        .project(vec![(col(0), "a"), (col(5), "b")]);

    // operator-at-a-time: two join spans, each classified
    let op_cfg = AuConfig { pipeline: false, ..AuConfig::default() };
    let ex = explain(&db, &q, &op_cfg).unwrap();
    let mut joins = 0;
    ex.trace.root.walk(&mut |s| {
        if s.op == "join" {
            joins += 1;
            assert_eq!(s.attr("strategy"), Some("hash-equi"));
        }
    });
    assert_eq!(joins, 2, "both joins must be traced:\n{}", ex.trace.render_text());

    // pipelined: the spine fuses into one chain; attrs name the mode
    for compiled in [false, true] {
        let cfg = AuConfig { compiled, ..cfg_pipeline(2, 3) };
        let ex = explain(&db, &q, &cfg).unwrap();
        let attempt = ex.trace.root.find("attempt").expect("attempt span");
        assert_eq!(attempt.attr("mode"), Some("pipeline"));
        assert_eq!(attempt.attr("exprs"), Some(if compiled { "compiled" } else { "interpreted" }));
        let fused = ex.trace.root.find("fused-chain").expect("fused chain span");
        let ops = fused.attr("ops").expect("ops summary");
        assert!(ops.contains("⋈(hash-equi)") && ops.contains("σ") && ops.contains("π"), "{ops}");
        assert_eq!(fused.attr("shards"), Some("3"));
    }
}

/// A fusable shape consumed under a Faithful delivery contract falls
/// back operator-at-a-time and records the blocking reason.
#[test]
fn explain_reports_fusion_fallback_reason() {
    let db = corpus_db();
    // aggregate directly over a join: the probe chain cannot reproduce
    // the operator path's row order, so the join subtree must fall back
    let q = table("t1")
        .join_on(table("t2"), col(0).eq(col(2)))
        .aggregate(vec![1], vec![AggSpec::new(AggFunc::Sum, col(3), "s")]);
    let ex = explain(&db, &q, &cfg_pipeline(2, 3)).unwrap();
    let agg = ex.trace.root.find("aggregate").expect("aggregate span");
    assert_eq!(agg.attr("fallback"), Some("pipeline-breaker"));
    let join = ex.trace.root.find("join").expect("join span");
    assert_eq!(join.attr("fallback"), Some("faithful-delivery-unreproducible"));
}

// ---------------------------------------------------------------------------
// metrics truthfulness and JSON surface
// ---------------------------------------------------------------------------

/// Counters reflect real work: drivers entered, normalization row
/// tallies matching the final result, and cancel checks only when a
/// token is armed.
#[test]
fn metrics_counters_reflect_real_work() {
    let db = corpus_db();
    let q = table("t1").join_on(table("t2"), col(0).eq(col(2)));
    let (out, trace) = eval_au_traced(&db, &q, &cfg_pipeline(2, 3)).unwrap();
    let m = &trace.metrics;
    assert!(m.counter("drivers_entered").unwrap() >= 1);
    assert!(m.counter("morsels_dispatched").unwrap() >= 1);
    assert!(m.counter("normalize_runs").unwrap() >= 1);
    // the last normalization's output is the final relation
    assert!(m.counter("normalize_rows_out").unwrap() >= out.len() as u64);
    assert_eq!(m.counter("cancel_checks"), Some(0), "no token armed");

    let cfg = cfg_pipeline(2, 3).with_timeout(std::time::Duration::from_secs(3600));
    let (_, trace) = eval_au_traced(&db, &q, &cfg).unwrap();
    assert!(trace.metrics.counter("cancel_checks").unwrap() >= 1, "token armed");

    let cfg = cfg_pipeline(2, 3).with_budget(BudgetSpec::rows(1_000_000));
    let (_, trace) = eval_au_traced(&db, &q, &cfg).unwrap();
    assert!(trace.metrics.counter("budget_charges").unwrap() >= 1);
    assert!(trace.metrics.counter("budget_rows_charged").unwrap() >= 1);
}

/// The JSON form is versioned and carries every documented top-level
/// key; a governed failure still yields a full trace via
/// `eval_au_traced_full`, with the error tagged on the unwound spans.
#[test]
fn trace_json_is_versioned_and_failure_preserves_trace() {
    let db = corpus_db();
    let q = table("t1").join_on(table("t2"), col(0).eq(col(2)));
    let (_, trace) = eval_au_traced(&db, &q, &AuConfig::default()).unwrap();
    let json = trace.to_json();
    for key in [
        "\"version\":1",
        "\"engine\":",
        "\"root\":",
        "\"events\":",
        "\"metrics\":",
        "\"total_ns\":",
    ] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }

    // zero timeout: the query fails, the trace survives
    let (result, trace) =
        eval_au_traced_full(&db, &q, &AuConfig::default().with_timeout(std::time::Duration::ZERO));
    assert_eq!(result.unwrap_err(), EvalError::Exec(ExecError::DeadlineExceeded));
    assert!(
        trace.events.iter().any(|e| e.kind.name() == "deadline_exceeded"),
        "events = {:?}",
        &trace.events
    );
    let err_attr = trace.root.attr("error").expect("root tagged with the error");
    assert!(err_attr.contains("deadline exceeded"), "{err_attr}");
}

// ---------------------------------------------------------------------------
// fault injection lands in the trace (feature `faults`)
// ---------------------------------------------------------------------------

#[cfg(feature = "faults")]
mod fault_trace {
    use super::*;
    use audb::exec::faults::{with_plan, FaultKind, FaultPlan, FaultRule};

    /// A one-shot injected *error* during the compiled attempt is
    /// absorbed by degradation — and the trace records the injected
    /// fault at exactly the plan's (driver, morsel) coordinates plus
    /// exactly one degradation event.
    #[test]
    fn injected_error_lands_with_exact_coordinates_and_one_degradation() {
        let db = corpus_db();
        let q = table("t1").join_on(table("t2"), col(0).eq(col(2)));
        let cfg = AuConfig { compiled: true, ..cfg_pipeline(2, 3) };
        let reference = eval_au(&db, &q, &cfg).unwrap();
        let (driver, morsel) = (0usize, 0usize);
        let plan = FaultPlan::new(vec![FaultRule::once(driver, morsel, FaultKind::Error)]);
        let (out, trace) = with_plan(plan.clone(), || eval_au_traced(&db, &q, &cfg)).unwrap();
        assert_eq!(out, reference, "degraded run must be byte-identical");
        assert_eq!(plan.fired(), 1);

        let injected: Vec<_> =
            trace.events.iter().filter(|e| e.kind.name() == "injected_fault").collect();
        assert_eq!(injected.len(), 1, "events = {:?}", &trace.events);
        assert_eq!(injected[0].driver, Some(driver), "driver coordinate");
        assert_eq!(injected[0].morsel, Some(morsel), "morsel coordinate");
        assert_eq!(trace.metrics.counter("injected_faults"), Some(1));

        let degraded: Vec<_> =
            trace.events.iter().filter(|e| e.kind.name() == "degraded_to_interpreter").collect();
        assert_eq!(degraded.len(), 1, "degradation recorded exactly once");
        assert_eq!(trace.metrics.counter("degradations"), Some(1));
    }

    /// Same for an injected worker *panic*: the panic is contained,
    /// degradation absorbs it, and the event carries the morsel the
    /// panic fired at.
    #[test]
    fn injected_panic_lands_in_trace() {
        let db = corpus_db();
        let q = table("t1").join_on(table("t2"), col(0).eq(col(2)));
        let cfg = AuConfig { compiled: true, ..cfg_pipeline(2, 3) };
        let reference = eval_au(&db, &q, &cfg).unwrap();
        let plan = FaultPlan::new(vec![FaultRule::once(0, 0, FaultKind::Panic)]);
        let (out, trace) = with_plan(plan.clone(), || eval_au_traced(&db, &q, &cfg)).unwrap();
        assert_eq!(out, reference);
        assert_eq!(plan.fired(), 1);
        let panics: Vec<_> =
            trace.events.iter().filter(|e| e.kind.name() == "worker_panic").collect();
        assert_eq!(panics.len(), 1, "events = {:?}", &trace.events);
        assert_eq!(panics[0].morsel, Some(0));
        assert!(panics[0].detail.contains("injected panic"), "{}", panics[0].detail);
        assert_eq!(trace.metrics.counter("worker_panics"), Some(1));
        assert_eq!(trace.metrics.counter("degradations"), Some(1));
    }

    /// An injected cancellation (the fault trips the armed token)
    /// surfaces as a failed query whose trace still carries the
    /// cancelled event — no retry, since cancellation is a resource
    /// verdict.
    #[test]
    fn injected_cancel_lands_in_trace() {
        let db = corpus_db();
        let q = table("t1").join_on(table("t2"), col(0).eq(col(2)));
        let cfg = AuConfig { compiled: true, ..cfg_pipeline(2, 3) }
            .with_timeout(std::time::Duration::from_secs(3600));
        let plan = FaultPlan::new(vec![FaultRule::persistent(0, FaultKind::Cancel)]);
        let (result, trace) = with_plan(plan, || eval_au_traced_full(&db, &q, &cfg));
        assert_eq!(result.unwrap_err(), EvalError::Exec(ExecError::Cancelled));
        assert!(
            trace.events.iter().any(|e| e.kind.name() == "cancelled"),
            "events = {:?}",
            &trace.events
        );
        assert_eq!(trace.metrics.counter("degradations"), Some(0), "no retry on cancellation");
        let err_attr = trace.root.attr("error").expect("root tagged with the error");
        assert!(err_attr.contains("cancelled"), "{err_attr}");
    }
}
