//! Property suite for the static program verifier
//! (`audb_core::verify`) and its query-side gate
//! (`audb_query::vcheck`):
//!
//! * **no false positives** — every program lowered from a random mixed
//!   Int/Float expression tree, in both lowering modes, passes Tier A +
//!   Tier B with zero `VerifyError`s; programs whose leaves are all
//!   columns additionally produce zero lints (constant-free trees give
//!   the abstract interpreter nothing to decide statically);
//! * **mutation detection** — every single-op corruption of those
//!   programs is caught by Tier A/B, surfaces a new lint, or is
//!   behavior-preserving under the differential oracle (never
//!   `Missed`);
//! * **graceful rejection** — a corrupted program injected at the chain
//!   compile sites (via the `with_tampered_programs` test seam) is
//!   rejected by the verifier and the stage degrades to the interpreted
//!   oracle with a byte-identical result, recording the
//!   `verify_rejects` counter and a `verifier_rejected` event.

use proptest::prelude::*;

use audb::core::program::Program;
use audb::core::verify::mutate;
use audb::prelude::*;
use audb::query::{table, with_tampered_programs};

// ---------------------------------------------------------------------------
// generators (mirroring tests/compiled_exprs_props.rs)
// ---------------------------------------------------------------------------

/// Mixed-representation numeric values: `Int` and quarter-step `Float`.
fn mixed_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-5i64..6).prop_map(Value::Int),
        (-20i64..21).prop_map(|q| Value::float(q as f64 / 4.0)),
    ]
}

/// Any three mixed values, sorted, make a valid range (sg = median).
fn mixed_range() -> impl Strategy<Value = RangeValue> {
    (mixed_value(), mixed_value(), mixed_value()).prop_map(|(a, b, c)| {
        let mut v = [a, b, c];
        v.sort();
        let [lb, sg, ub] = v;
        RangeValue::new(lb, sg, ub).expect("sorted triple is a valid range")
    })
}

fn annot_strategy() -> impl Strategy<Value = AuAnnot> {
    (0u64..2, 0u64..3, 0u64..3).prop_map(|(a, b, c)| AuAnnot::triple(a, a + b, a + b + c))
}

/// A two-column AU relation over mixed Int/Float ranges.
fn au_relation_strategy(max_rows: usize) -> impl Strategy<Value = AuRelation> {
    proptest::collection::vec((mixed_range(), mixed_range(), annot_strategy()), 0..max_rows)
        .prop_map(|rows| {
            AuRelation::from_rows(
                Schema::named(&["A", "B"]),
                rows.into_iter().map(|(a, b, k)| (RangeTuple::new(vec![a, b]), k)).collect(),
            )
        })
}

/// Random numeric expression trees over columns 0..2 with Int/Float
/// literals — the same shape the compiled-backend differential suite
/// uses.
fn num_expr_strategy() -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0usize..2).prop_map(col),
        (-5i64..6).prop_map(lit),
        (-12i64..13).prop_map(|q| lit(q as f64 / 4.0)),
    ]
    .boxed();
    recurse_numeric(leaf)
}

/// The col-only-leaf variant: no literals anywhere, so Tier B's
/// abstract interpreter can never decide a condition or divisor
/// statically and the zero-lint property must hold.
fn col_expr_strategy() -> BoxedStrategy<Expr> {
    let leaf = (0usize..2).prop_map(col).boxed();
    recurse_numeric(leaf)
}

fn recurse_numeric(leaf: BoxedStrategy<Expr>) -> BoxedStrategy<Expr> {
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.add(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.sub(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.mul(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.div(b)),
            inner.clone().prop_map(Expr::neg),
            (inner.clone(), inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(a, b, t, e)| Expr::if_then_else(a.leq(b), t, e)),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(l, s, u)| Expr::make_uncertain(l, s, u)),
        ]
    })
}

/// Random predicates over numeric subtrees drawn from `e`.
fn pred_over(e: BoxedStrategy<Expr>) -> BoxedStrategy<Expr> {
    let cmp = prop_oneof![
        (e.clone(), e.clone()).prop_map(|(a, b)| a.leq(b)),
        (e.clone(), e.clone()).prop_map(|(a, b)| a.lt(b)),
        (e.clone(), e.clone()).prop_map(|(a, b)| a.geq(b)),
        (e.clone(), e.clone()).prop_map(|(a, b)| a.gt(b)),
        (e.clone(), e.clone()).prop_map(|(a, b)| a.eq(b)),
        (e.clone(), e.clone()).prop_map(|(a, b)| a.neq(b)),
    ]
    .boxed();
    cmp.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(Expr::not),
        ]
    })
}

fn both_modes(e: &Expr) -> [Program; 2] {
    [Program::compile_range(e), Program::compile_det(e)]
}

// ---------------------------------------------------------------------------
// properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    /// No false positives: Tier A + Tier B accept every program the
    /// lowerer produces from random mixed trees, in both modes (numeric
    /// trees and composed predicates alike). Lints are allowed here —
    /// random literals legitimately produce statically-certain
    /// conditions and divisors.
    #[test]
    fn random_programs_verify_without_errors(
        e in num_expr_strategy(),
        p in pred_over(num_expr_strategy()),
    ) {
        for expr in [&e, &p] {
            for prog in both_modes(expr) {
                let res = prog.verify_full();
                prop_assert!(res.is_ok(), "verifier rejected {}: {:?}", expr, res.err());
            }
        }
        // multi-output projection lowering verifies too
        let many = Program::compile_range_many(&[e.clone(), p.clone()]);
        prop_assert!(many.verify_full().is_ok(), "multi-output rejected for ({}, {})", e, p);
    }

    /// Zero diagnostics on constant-free trees: with every leaf a
    /// column, the abstract interpreter can never prove a condition
    /// constant or an error certain, so Tier B must stay silent.
    #[test]
    fn col_leaf_programs_verify_with_zero_diagnostics(
        e in col_expr_strategy(),
        p in pred_over(col_expr_strategy()),
    ) {
        for expr in [&e, &p] {
            for prog in both_modes(expr) {
                match prog.verify_full() {
                    Ok(lints) => prop_assert!(
                        lints.is_empty(),
                        "false-positive lints for {}: {:?}", expr, lints
                    ),
                    Err(err) => return Err(TestCaseError::fail(format!(
                        "verifier rejected {expr}: {err}"
                    ))),
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Mutation harness on random programs: every corruption class is
    /// either caught (Tier A, Tier B, or a fresh lint) or provably
    /// behavior-preserving on the oracle corpus — never missed.
    #[test]
    fn random_program_mutants_detected_or_equivalent(
        e in num_expr_strategy(),
        p in pred_over(num_expr_strategy()),
    ) {
        let (range_rows, det_rows) = mutate::oracle_rows(2);
        for expr in [&e, &p] {
            for prog in both_modes(expr) {
                for m in mutate::mutants(&prog) {
                    let v = mutate::classify(&prog, &m.program, &range_rows, &det_rows);
                    prop_assert!(
                        v != mutate::Verdict::Missed,
                        "missed {} ({}) on {}", m.class, m.detail, expr
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Verifier-rejection degradation: corrupt every rejectable chain
    /// program at the compile sites — the query must still produce a
    /// result byte-identical to the fully interpreted oracle.
    #[test]
    fn rejected_programs_degrade_byte_identically(
        rel in au_relation_strategy(12),
        pred in pred_over(num_expr_strategy()),
        proj in num_expr_strategy(),
    ) {
        let mut db = AuDatabase::new();
        db.insert("t", rel);
        let q = table("t")
            .select(pred)
            .project(vec![(proj, "p"), (col(0), "a")]);
        let oracle = eval_au(&db, &q, &AuConfig { compiled: false, ..AuConfig::default() });
        let tampered = with_tampered_programs(corrupt_if_possible, || {
            eval_au(&db, &q, &AuConfig::default())
        });
        prop_assert_eq!(&tampered, &oracle);
    }
}

/// Replace a program with its first verifier-rejectable mutant, if one
/// exists (otherwise pass it through unchanged — nothing to reject).
fn corrupt_if_possible(p: Program) -> Program {
    mutate::mutants(&p)
        .into_iter()
        .map(|m| m.program)
        .find(|m| m.verify_full().is_err())
        .unwrap_or(p)
}

fn two_row_db() -> AuDatabase {
    let mut db = AuDatabase::new();
    db.insert(
        "t",
        AuRelation::from_rows(
            Schema::named(&["A", "B"]),
            vec![
                (
                    RangeTuple::new(vec![
                        RangeValue::range(1i64, 2i64, 3i64),
                        RangeValue::certain(Value::Int(1)),
                    ]),
                    AuAnnot::triple(1, 1, 1),
                ),
                (
                    RangeTuple::new(vec![
                        RangeValue::certain(Value::Int(5)),
                        RangeValue::certain(Value::Int(0)),
                    ]),
                    AuAnnot::triple(1, 2, 2),
                ),
            ],
        ),
    );
    db
}

/// The rejection is observable: the degraded stage ticks the
/// `verify_rejects` counter, logs a `verifier_rejected` event carrying
/// the diagnostic, closes a rejected `verify` span — and the result
/// still equals the interpreted oracle.
#[test]
fn rejection_ticks_counter_and_event() {
    let db = two_row_db();
    let q = table("t").select(col(0).leq(col(1))).project(vec![(col(0).add(col(1)), "s")]);
    let oracle = eval_au(&db, &q, &AuConfig { compiled: false, ..AuConfig::default() });

    let (result, trace) = with_tampered_programs(corrupt_if_possible, || {
        eval_au_traced_full(&db, &q, &AuConfig::default())
    });
    assert_eq!(result, oracle);
    let rejects = trace.metrics.counter("verify_rejects").unwrap_or(0);
    assert!(rejects >= 1, "expected at least one verifier rejection:\n{}", trace.render_text());
    assert!(
        trace.events.iter().any(|ev| ev.kind.name() == "verifier_rejected"),
        "expected a verifier_rejected event, got {:?}",
        trace.events
    );
    let mut saw_rejected_span = false;
    trace.root.walk(&mut |s| {
        if s.op == "verify" && s.attr("verdict") == Some("rejected") {
            saw_rejected_span = true;
            assert!(s.attr("error").is_some(), "rejected span carries the diagnostic");
        }
    });
    assert!(saw_rejected_span, "expected a rejected verify span in:\n{}", trace.render_text());
}

/// Untampered compiles are observable too: a traced evaluation with
/// verification on records accepted `verify` spans (tier and op-count
/// attributes included) and zero rejections.
#[test]
fn accepted_compiles_record_verify_spans() {
    let db = two_row_db();
    let q = table("t").select(col(0).leq(col(1))).project(vec![(col(0).add(col(1)), "s")]);
    let (result, trace) = eval_au_traced_full(&db, &q, &AuConfig::default());
    assert!(result.is_ok(), "evaluation failed: {result:?}");
    assert_eq!(trace.metrics.counter("verify_rejects"), Some(0));
    let mut accepted = 0;
    trace.root.walk(&mut |s| {
        if s.op == "verify" {
            assert_eq!(s.attr("verdict"), Some("accepted"), "span: {s:?}");
            assert_eq!(s.attr("tier"), Some("A+B"));
            assert!(s.attr("ops").is_some());
            assert!(s.attr("lints").is_some());
            accepted += 1;
        }
    });
    assert!(accepted >= 2, "expected verify spans for both chain stages, got {accepted}");
    // the engine-configuration echo carries the knob
    assert!(trace.engine.iter().any(|(k, v)| *k == "verify" && v == "true"));
}

/// The det mirror degrades identically: tampered deterministic chain
/// programs fall back to the interpreted stage with equal output.
#[test]
fn det_chain_rejection_degrades_identically() {
    use audb::query::det::eval_det_opts;

    let mut det_db = Database::new();
    det_db.insert("t", two_row_db().get("t").expect("inserted above").sg_world());
    let q = table("t").select(col(0).leq(col(1))).project(vec![(col(0).add(col(1)), "s")]);
    let exec = Executor::sequential();
    let interp = eval_det_opts(&det_db, &q, &exec, true, None, false);
    let tampered = with_tampered_programs(corrupt_if_possible, || {
        eval_det_opts(&det_db, &q, &exec, true, None, true)
    });
    assert_eq!(tampered, interp);
}
