use audb::core::program::Program;
use audb::prelude::*;

#[test]
fn zero_times_div_band_verifies() {
    // exact-zero constant times a full-line band (from a div of columns)
    let e = lit(0i64).mul(col(0).div(col(1)));
    let p = Program::compile_range(&e);
    let res = p.verify_full();
    assert!(res.is_ok(), "verifier rejected a fresh lowering: {:?}", res.err());
}
