//! Cross-crate semantic checks: the paper's running examples end to end,
//! and the relationships between AU-DBs and every baseline
//! (under-approximation, over-approximation, exactness) on shared inputs.

use proptest::prelude::*;

use audb::baselines::{
    eval_libkin, run_maybms, run_symb, trio::eval_trio, xrelation_to_vtable, VDatabase,
};
use audb::incomplete::relation_bounds_world;
use audb::prelude::*;
use audb::workloads::{exact_spj, over_grouping_pct};

// ---------------------------------------------------------------------------
// the paper's Figure 1 example, end to end
// ---------------------------------------------------------------------------

/// Figure 1: the COVID example — group-average over data with uncertain
/// attributes, verified against full world enumeration.
#[test]
fn figure_1_covid_example() {
    // model sizes ordinally: 0=village, 1=town, 2=city, 3=metro;
    // rates in tenths of a percent. Small domains keep the worlds
    // enumerable; this is a faithful scaled-down Figure 1.
    let mk = |rates: &[i64], sizes: &[i64]| -> XTuple {
        let mut alts = Vec::new();
        for r in rates {
            for s in sizes {
                alts.push([Value::Int(*r), Value::Int(*s)].into_iter().collect::<Tuple>());
            }
        }
        let p = 1.0 / alts.len() as f64;
        let mut weighted: Vec<(Tuple, f64)> = alts.into_iter().map(|t| (t, p)).collect();
        weighted[0].1 += 1e-9;
        let norm: f64 = weighted.iter().map(|(_, q)| q).sum();
        for w in weighted.iter_mut() {
            w.1 /= norm;
        }
        XTuple::new(weighted)
    };
    let mut xdb = XDb::default();
    xdb.insert(
        "locales",
        XRelation::new(
            Schema::named(&["rate", "size"]),
            vec![
                mk(&[30, 40], &[3]),     // Los Angeles: rate in {3%, 4%}
                mk(&[180], &[2, 3]),     // Austin: city or metro
                mk(&[140], &[3]),        // Houston
                mk(&[10, 30], &[1, 2]),  // Berlin
                mk(&[10], &[0, 1, 3]),   // Sacramento: size unknown
                mk(&[0, 50, 100], &[1]), // Springfield: rate unknown
            ],
        ),
    );
    let q = table("locales")
        .aggregate(vec![1], vec![AggSpec::new(AggFunc::Avg, audb::core::col(0), "rate")]);
    let au = eval_au(&xdb.to_au(), &q, &AuConfig::precise()).unwrap();
    let inc = xdb.to_incomplete(1 << 12).expect("enumerable");
    let exact = inc.eval(&q).unwrap();
    for w in &exact.worlds {
        assert!(relation_bounds_world(&au, w));
    }
    assert_eq!(au.sg_world().normalized(), exact.sg_world().normalized());
    // the metro group certainly exists (Houston is certainly a metro)
    let metro = au.rows().iter().find(|(t, _)| t.0[0].sg == Value::Int(3)).expect("metro group");
    assert!(metro.1.lb >= 1);
}

// ---------------------------------------------------------------------------
// baseline relationships on random inputs
// ---------------------------------------------------------------------------

fn xtuple_strategy() -> impl Strategy<Value = XTuple> {
    let alt = (0i64..3, 0i64..5)
        .prop_map(|(g, v)| [Value::Int(g), Value::Int(v)].into_iter().collect::<Tuple>());
    (proptest::collection::vec(alt, 1..3), prop_oneof![Just(1.0f64), Just(0.5f64)]).prop_map(
        |(alts, total)| {
            let p = total / alts.len() as f64;
            let mut weighted: Vec<(Tuple, f64)> = alts.into_iter().map(|t| (t, p)).collect();
            weighted[0].1 += 1e-9;
            let norm: f64 = weighted.iter().map(|(_, q)| q).sum::<f64>() / total;
            for w in weighted.iter_mut() {
                w.1 /= norm;
            }
            XTuple::new(weighted)
        },
    )
}

fn xdb_strategy() -> impl Strategy<Value = XDb> {
    proptest::collection::vec(xtuple_strategy(), 0..4).prop_map(|r| {
        let mut db = XDb::default();
        db.insert("r", XRelation::new(Schema::named(&["g", "v"]), r));
        db
    })
}

fn spj_query_strategy() -> impl Strategy<Value = Query> {
    prop_oneof![
        Just(table("r")),
        (-1i64..5).prop_map(|k| table("r").select(audb::core::col(0).leq(audb::core::lit(k)))),
        (-1i64..5).prop_map(|k| {
            table("r")
                .select(audb::core::col(1).gt(audb::core::lit(k)))
                .project(vec![(audb::core::col(0), "g"), (audb::core::col(1), "v")])
        }),
        Just(
            table("r")
                .join_on(table("r"), audb::core::col(0).eq(audb::core::col(2)))
                .project(vec![(audb::core::col(0), "g"), (audb::core::col(3), "v")])
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    /// Libkin's certain-answer under-approximation really is an
    /// under-approximation: every null-free answer it returns is a
    /// certain answer under possible-worlds semantics.
    #[test]
    fn libkin_under_approximates(db in xdb_strategy(), q in spj_query_strategy()) {
        let Some(inc) = db.to_incomplete(512) else { return Ok(()) };
        let mut vdb = VDatabase::default();
        // V-tables cannot express optionality: restrict to databases
        // where every x-tuple certainly exists.
        if db.relations.iter().any(|(_, r)| r.xtuples.iter().any(|x| x.is_optional())) {
            return Ok(());
        }
        vdb.insert("r", xrelation_to_vtable(db.get("r").unwrap(), vec![Value::Int(0)]));
        let (_, rows) = eval_libkin(&vdb, &q).expect("libkin");
        let exact = inc.eval(&q).unwrap();
        let certain = exact.certain_tuples();
        for row in &rows {
            let consts: Option<Tuple> = row
                .iter()
                .map(|c| match c {
                    audb::incomplete::VCell::Const(v) => Some(v.clone()),
                    _ => None,
                })
                .collect::<Option<Vec<_>>>()
                .map(Tuple::new);
            if let Some(t) = consts {
                prop_assert!(certain.contains(&t), "{t} returned but not certain");
            }
        }
    }

    /// MayBMS-style expansion over-approximates the possible answers.
    #[test]
    fn maybms_over_approximates(db in xdb_strategy(), q in spj_query_strategy()) {
        let Some(inc) = db.to_incomplete(512) else { return Ok(()) };
        let poss = run_maybms(&db, &q).expect("maybms");
        let exact = inc.eval(&q).unwrap();
        for t in exact.all_tuples() {
            prop_assert!(poss.multiplicity(&t) > 0, "possible {t} missed");
        }
    }

    /// Trio's lineage evaluation is *exact* for SPJ: its distinct tuples
    /// are precisely the possible answers, and its certainty test agrees
    /// with world enumeration.
    #[test]
    fn trio_is_exact_for_spj(db in xdb_strategy(), q in spj_query_strategy()) {
        let Some(inc) = db.to_incomplete(512) else { return Ok(()) };
        let trio = eval_trio(&db, &q).expect("trio");
        let exact = inc.eval(&q).unwrap();
        let possible = exact.all_tuples();
        let trio_tuples: std::collections::BTreeSet<Tuple> =
            trio.distinct_tuples().into_iter().collect();
        prop_assert_eq!(&trio_tuples, &possible);
        let certain = exact.certain_tuples();
        for t in &possible {
            if let Some(c) = trio.is_certain(&db, t, 4096) {
                prop_assert_eq!(c, certain.contains(t), "certainty of {}", t);
            }
        }
    }

    /// Symb (exhaustive enumeration) produces exactly the per-key bounds
    /// of the true possible worlds for an aggregate query.
    #[test]
    fn symb_is_exact(db in xdb_strategy()) {
        let Some(inc) = db.to_incomplete(512) else { return Ok(()) };
        let q = table("r").aggregate(
            vec![0],
            vec![AggSpec::new(AggFunc::Sum, audb::core::col(1), "s")],
        );
        let Some(bounds) = run_symb(&db, &q, &[0], 1, 4096).expect("symb") else {
            return Ok(());
        };
        let exact = inc.eval(&q).unwrap();
        for (key, (lo, hi, _)) in &bounds.per_key {
            let mut wmin: Option<Value> = None;
            let mut wmax: Option<Value> = None;
            for w in &exact.worlds {
                for (t, _) in w.rows() {
                    if &t.project(&[0]) == key {
                        let v = t.0[1].clone();
                        wmin = Some(wmin.map_or(v.clone(), |m| Value::min_of(m, v.clone())));
                        wmax = Some(wmax.map_or(v.clone(), |m| Value::max_of(m, v)));
                    }
                }
            }
            prop_assert_eq!(Some(lo.clone()), wmin);
            prop_assert_eq!(Some(hi.clone()), wmax);
        }
    }

    /// `exact_spj`'s ground truth agrees with world enumeration (it is
    /// what Figure 17's accuracy metrics are computed against).
    #[test]
    fn exact_spj_agrees_with_enumeration(db in xdb_strategy(), q in spj_query_strategy()) {
        let Some(inc) = db.to_incomplete(512) else { return Ok(()) };
        let (possible, certain) = exact_spj(&db, &q, 4096).expect("exact");
        let exact = inc.eval(&q).unwrap();
        prop_assert_eq!(possible, exact.all_tuples());
        prop_assert_eq!(certain, exact.certain_tuples());
    }

    /// UA-DB evaluation under-approximates certain multiplicities for
    /// RA+ (the Feng et al. 2019 guarantee our baseline relies on).
    #[test]
    fn uadb_certain_under_approximates(db in xdb_strategy(), q in spj_query_strategy()) {
        let Some(inc) = db.to_incomplete(512) else { return Ok(()) };
        // build the UA-DB: SG tuples, certain iff the x-tuple is certain
        let mut ua = UaDatabase::new();
        for (name, rel) in &db.relations {
            let mut r = UaRelation::empty(rel.schema.clone());
            for xt in &rel.xtuples {
                if xt.sg_present() {
                    r.push(
                        xt.pick_max().clone(),
                        UaAnnot::new((!xt.is_uncertain()) as u64, 1),
                    );
                }
            }
            r.normalize();
            ua.insert(name.clone(), r);
        }
        let out = eval_ua(&ua, &q).expect("ua");
        let exact = inc.eval(&q).unwrap();
        for (t, k) in out.rows() {
            prop_assert!(
                k.certain <= exact.certain_multiplicity(t),
                "UA certain {} exceeds true certain {} for {}",
                k.certain,
                exact.certain_multiplicity(t),
                t
            );
        }
    }

    /// Over-grouping is zero exactly when all group-by values are
    /// certain.
    #[test]
    fn over_grouping_sanity(db in xdb_strategy()) {
        let au = db.to_au();
        let rel = au.get("r").unwrap();
        let pct = over_grouping_pct(rel, &[0]);
        prop_assert!(pct >= 0.0);
        let all_certain = rel.rows().iter().all(|(t, _)| t.0[0].is_certain());
        if all_certain {
            prop_assert_eq!(pct, 0.0);
        }
    }
}
