//! Theorem 1 as a property: for random scalar expressions and random
//! range-annotated valuations, range-annotated evaluation bounds every
//! deterministic outcome over every bounded valuation — and its SG
//! component equals deterministic evaluation over the SG valuation.
//! Also: the compiled deterministic triple of the rewrite middleware
//! (`compile_range_expr`) computes exactly the same three values.

use proptest::prelude::*;

use audb::core::{col, lit, Expr, RangeValue, Value};
use audb::query::rewrite::{compile_range_expr, EncLayout};

/// Random integer range triples over a small domain.
fn range_strategy() -> impl Strategy<Value = RangeValue> {
    proptest::collection::vec(-3i64..5, 3).prop_map(|mut v| {
        v.sort_unstable();
        RangeValue::range(v[0], v[1], v[2])
    })
}

/// Random expressions over two integer variables. Division is omitted
/// (range division is undefined when the denominator may be 0 — its
/// guard has a dedicated unit test).
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![Just(col(0)), Just(col(1)), (-3i64..5).prop_map(lit),];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.add(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.sub(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.mul(b)),
            inner.clone().prop_map(|a| a.neg()),
            // comparisons produce booleans; wrap back into values with if
            (inner.clone(), inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(a, b, t, e)| Expr::if_then_else(a.leq(b), t, e)),
            (inner.clone(), inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(a, b, t, e)| Expr::if_then_else(a.eq(b), t, e)),
            (inner.clone(), inner.clone(), inner.clone(), inner.clone()).prop_map(
                |(a, b, t, e)| Expr::if_then_else(a.clone().lt(b.clone()).or(a.gt(b)), t, e)
            ),
            (inner.clone(), inner.clone(), inner.clone(), inner.clone()).prop_map(
                |(a, b, t, e)| Expr::if_then_else(
                    a.clone().leq(b.clone()).and(a.neq(b)).not(),
                    t,
                    e
                )
            ),
        ]
    })
}

/// Boolean predicates over two variables.
fn pred_strategy() -> impl Strategy<Value = Expr> {
    let atom = prop_oneof![
        (expr_strategy(), expr_strategy()).prop_map(|(a, b)| a.leq(b)),
        (expr_strategy(), expr_strategy()).prop_map(|(a, b)| a.eq(b)),
        (expr_strategy(), expr_strategy()).prop_map(|(a, b)| a.gt(b)),
        (expr_strategy(), expr_strategy()).prop_map(|(a, b)| a.neq(b)),
    ];
    atom.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|a| a.not()),
        ]
    })
}

/// All deterministic valuations bounded by the pair of ranges
/// (Definition 8's per-variable condition over small integer domains).
fn bounded_valuations(r0: &RangeValue, r1: &RangeValue) -> Vec<Vec<Value>> {
    let ints = |r: &RangeValue| -> Vec<i64> {
        let lo = r.lb.as_f64().unwrap() as i64;
        let hi = r.ub.as_f64().unwrap() as i64;
        (lo..=hi).collect()
    };
    let mut out = Vec::new();
    for a in ints(r0) {
        for b in ints(r1) {
            out.push(vec![Value::Int(a), Value::Int(b)]);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    /// Theorem 1: range evaluation bounds all possible outcomes.
    #[test]
    fn range_eval_bounds_all_worlds(
        e in expr_strategy(),
        r0 in range_strategy(),
        r1 in range_strategy(),
    ) {
        let ranges = vec![r0.clone(), r1.clone()];
        let bound = e.eval_range(&ranges).expect("range eval");
        for w in bounded_valuations(&r0, &r1) {
            let v = e.eval(&w).expect("det eval");
            prop_assert!(
                bound.bounds(&v),
                "{e}: {bound} does not bound {v} at {w:?}"
            );
        }
        // SG component = deterministic evaluation over the SG valuation
        let sg = vec![r0.sg.clone(), r1.sg.clone()];
        prop_assert_eq!(bound.sg, e.eval(&sg).unwrap());
    }

    /// Predicates: certainly-true implies true everywhere; possibly-false
    /// implies false somewhere (and vice versa).
    #[test]
    fn predicate_triples_are_sound(
        p in pred_strategy(),
        r0 in range_strategy(),
        r1 in range_strategy(),
    ) {
        let ranges = vec![r0.clone(), r1.clone()];
        let (lb, sg, ub) = p.eval_range_bool3(&ranges).expect("range eval");
        let worlds = bounded_valuations(&r0, &r1);
        let truths: Vec<bool> =
            worlds.iter().map(|w| p.eval_bool(w).unwrap()).collect();
        if lb {
            prop_assert!(truths.iter().all(|t| *t), "{p} claimed certainly true");
        }
        if !ub {
            prop_assert!(truths.iter().all(|t| !*t), "{p} claimed certainly false");
        }
        let sg_world = vec![r0.sg.clone(), r1.sg.clone()];
        prop_assert_eq!(sg, p.eval_bool(&sg_world).unwrap());
    }

    /// The rewrite middleware's compiled `e↓/e^sg/e↑` triple computes
    /// exactly `eval_range` (Section 10.2's expression translation).
    #[test]
    fn compiled_triple_matches_range_eval(
        e in expr_strategy(),
        r0 in range_strategy(),
        r1 in range_strategy(),
    ) {
        let ranges = vec![r0.clone(), r1.clone()];
        let native = e.eval_range(&ranges).unwrap();
        let lay = EncLayout::new(2);
        let c = compile_range_expr(&e, lay).unwrap();
        // encode the tuple: [sg0, sg1, lb0, lb1, ub0, ub1, rows...]
        let enc = vec![
            r0.sg.clone(),
            r1.sg.clone(),
            r0.lb.clone(),
            r1.lb.clone(),
            r0.ub.clone(),
            r1.ub.clone(),
            Value::Int(1),
            Value::Int(1),
            Value::Int(1),
        ];
        prop_assert_eq!(c.lb.eval(&enc).unwrap(), native.lb);
        prop_assert_eq!(c.sg.eval(&enc).unwrap(), native.sg);
        prop_assert_eq!(c.ub.eval(&enc).unwrap(), native.ub);
    }

    /// Incomplete expression semantics (Definition 5) agrees with
    /// per-world deterministic evaluation.
    #[test]
    fn incomplete_semantics_is_pointwise(
        e in expr_strategy(),
        r0 in range_strategy(),
        r1 in range_strategy(),
    ) {
        let worlds = bounded_valuations(&r0, &r1);
        let set = e.eval_incomplete(&worlds).unwrap();
        for w in &worlds {
            prop_assert!(set.contains(&e.eval(w).unwrap()));
        }
    }
}
