//! Determinism of the partition-parallel execution runtime: for every
//! driver wired through `audb_exec` — the planner's join paths,
//! aggregation, and set difference — the output must be *identical*
//! (same row list, not just equal after normalization) for every worker
//! count, including pools far wider than the machine, and for
//! adversarial partition shapes (empty inputs, single rows, one giant
//! all-same-key bucket). The indexed aggregation is additionally
//! checked against the retained groups × tuples membership scan.

use proptest::prelude::*;

use audb::core::{col, Expr};
use audb::prelude::*;
use audb::query::au::aggregate::{aggregate_au_exec, aggregate_au_scan};
use audb::query::au::difference::{difference_au_exec, difference_au_scan};
use audb::query::au::{project_au_exec, select_au_exec};
use audb::query::planner::{join_au_planned_exec, join_det_planned_exec};
use audb::query::rewrite::{dec_relation_exec, enc_relation_exec};

/// Worker counts the ISSUE pins down; 7 exceeds most CI machines.
const WORKERS: [usize; 4] = [1, 2, 4, 7];

/// Force real partitioning even on tiny inputs: without this the
/// default 128-row morsel floor would keep small proptest cases on the
/// inline path and test nothing.
fn exec(workers: usize) -> Executor {
    Executor::new(workers).with_partitioner(Partitioner {
        min_morsel: 1,
        morsels_per_worker: 3,
        min_rows_per_worker: 0,
    })
}

// ---------------------------------------------------------------------------
// generators (mirroring tests/join_equivalence.rs)
// ---------------------------------------------------------------------------

fn range_value_strategy() -> impl Strategy<Value = RangeValue> {
    prop_oneof![
        (-4i64..5).prop_map(|v| RangeValue::certain(Value::Int(v))),
        (-4i64..5, 0i64..3, 0i64..3).prop_map(|(a, d1, d2)| RangeValue::range(a - d1, a, a + d2)),
        (-4i64..5).prop_map(|v| RangeValue::unknown(Value::Int(v))),
    ]
}

fn annot_strategy() -> impl Strategy<Value = AuAnnot> {
    (0u64..2, 0u64..3, 0u64..3).prop_map(|(a, b, c)| AuAnnot::triple(a, a + b, a + b + c))
}

fn au_relation_strategy(
    name0: &'static str,
    name1: &'static str,
    max_rows: usize,
) -> impl Strategy<Value = AuRelation> {
    proptest::collection::vec(
        (range_value_strategy(), range_value_strategy(), annot_strategy()),
        0..max_rows,
    )
    .prop_map(move |rows| {
        AuRelation::from_rows(
            Schema::named(&[name0, name1]),
            rows.into_iter().map(|(a, b, k)| (RangeTuple::new(vec![a, b]), k)).collect(),
        )
    })
}

fn join_predicate_strategy() -> impl Strategy<Value = Option<Expr>> {
    prop_oneof![
        Just(Some(col(0).eq(col(2)))),
        Just(Some(col(0).eq(col(2)).and(col(1).eq(col(3))))),
        Just(Some(col(0).leq(col(2)))),
        Just(Some(col(3).gt(col(1)))),
        Just(None),
    ]
}

// ---------------------------------------------------------------------------
// property tests: parallel output is byte-identical to sequential
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn join_identical_across_worker_counts(
        l in au_relation_strategy("A", "B", 12),
        r in au_relation_strategy("C", "D", 12),
        pred in join_predicate_strategy(),
    ) {
        let seq = join_au_planned_exec(&l, &r, pred.as_ref(), &exec(1)).unwrap();
        for w in WORKERS {
            let par = join_au_planned_exec(&l, &r, pred.as_ref(), &exec(w)).unwrap();
            prop_assert_eq!(&par, &seq, "workers = {}", w);
        }
    }

    #[test]
    fn aggregate_identical_across_worker_counts_and_vs_scan(
        rel in au_relation_strategy("g", "v", 16),
        compress in prop_oneof![Just(None), Just(Some(2usize))],
    ) {
        let aggs = [
            AggSpec::new(AggFunc::Sum, col(1), "s"),
            AggSpec::count("c"),
            AggSpec::new(AggFunc::Min, col(1), "lo"),
            AggSpec::new(AggFunc::Max, col(1), "hi"),
            AggSpec::new(AggFunc::Avg, col(1), "a"),
        ];
        for group_by in [vec![0usize], vec![0, 1], vec![]] {
            let seq = aggregate_au_exec(&rel, &group_by, &aggs, compress, &exec(1)).unwrap();
            // the sweep-indexed membership equals the groups × tuples scan
            let scan = aggregate_au_scan(&rel, &group_by, &aggs, compress).unwrap();
            prop_assert_eq!(&scan, &seq, "scan vs indexed, group_by = {:?}", &group_by);
            for w in WORKERS {
                let par = aggregate_au_exec(&rel, &group_by, &aggs, compress, &exec(w)).unwrap();
                prop_assert_eq!(&par, &seq, "workers = {}, group_by = {:?}", w, &group_by);
            }
        }
    }

    #[test]
    fn select_identical_across_worker_counts(
        rel in au_relation_strategy("A", "B", 16),
    ) {
        for pred in [
            col(0).eq(lit(1i64)),
            col(0).leq(col(1)),
            col(1).gt(lit(0i64)).and(col(0).neq(lit(2i64))),
        ] {
            let seq = select_au_exec(&rel, &pred, &exec(1)).unwrap();
            // selection preserves normal form — no hash-merge downstream
            prop_assert!(seq.is_normalized(), "select lost the normalized flag");
            for w in WORKERS {
                let par = select_au_exec(&rel, &pred, &exec(w)).unwrap();
                prop_assert!(par.is_normalized());
                prop_assert_eq!(&par, &seq, "workers = {}, pred = {}", w, &pred);
            }
        }
    }

    #[test]
    fn project_identical_across_worker_counts(
        rel in au_relation_strategy("A", "B", 16),
    ) {
        for exprs in [
            vec![(col(0), "a".to_string())],
            vec![(col(0).add(col(1)), "s".to_string()), (lit(1i64), "one".to_string())],
            vec![(col(1), "b".to_string()), (col(0), "a".to_string())],
        ] {
            let seq = project_au_exec(&rel, &exprs, &exec(1)).unwrap();
            for w in WORKERS {
                let par = project_au_exec(&rel, &exprs, &exec(w)).unwrap();
                prop_assert_eq!(&par, &seq, "workers = {}", w);
            }
        }
    }

    #[test]
    fn enc_dec_identical_across_worker_counts(
        rel in au_relation_strategy("A", "B", 16),
    ) {
        let enc_seq = enc_relation_exec(&rel, &exec(1)).unwrap();
        let dec_seq = dec_relation_exec(&enc_seq, &rel.schema, &exec(1)).unwrap();
        prop_assert_eq!(&dec_seq, &rel, "Enc/Dec round trip");
        for w in WORKERS {
            let enc = enc_relation_exec(&rel, &exec(w)).unwrap();
            prop_assert_eq!(&enc, &enc_seq, "Enc, workers = {}", w);
            let dec = dec_relation_exec(&enc, &rel.schema, &exec(w)).unwrap();
            prop_assert_eq!(&dec, &dec_seq, "Dec, workers = {}", w);
        }
    }

    #[test]
    fn normalize_identical_across_worker_counts(
        rel in au_relation_strategy("A", "B", 16),
        copies in 1usize..4,
    ) {
        // a deliberately non-normalized row list: several copies, reversed
        let mut messy = AuRelation::empty(rel.schema.clone());
        for c in 0..copies {
            for (t, k) in rel.rows().iter().rev() {
                messy.push(t.clone(), *k);
                if c == 0 {
                    messy.push(t.clone(), *k);
                }
            }
        }
        let seq = messy.clone().into_normalized();
        for w in WORKERS {
            let mut par = messy.clone();
            par.normalize_with(&exec(w)).unwrap();
            prop_assert_eq!(&par, &seq, "AU normalize, workers = {}", w);
        }
        // the deterministic relation's normalize shares the driver
        let mut det = Relation::empty(rel.schema.clone());
        for _ in 0..copies + 1 {
            for (t, k) in rel.sg_world().rows().iter().rev() {
                det.push(t.clone(), *k);
            }
        }
        let det_seq = det.clone().into_normalized();
        for w in WORKERS {
            let mut par = det.clone();
            par.normalize_with(&exec(w)).unwrap();
            prop_assert_eq!(&par, &det_seq, "det normalize, workers = {}", w);
        }
    }

    #[test]
    fn difference_identical_across_worker_counts_and_vs_scan(
        l in au_relation_strategy("A", "B", 12),
        r in au_relation_strategy("A", "B", 12),
    ) {
        let seq = difference_au_exec(&l, &r, &exec(1)).unwrap();
        // the sweep + SG-key-hash reductions equal the right-side scan
        let scan = difference_au_scan(&l, &r).unwrap();
        prop_assert_eq!(&scan, &seq, "scan vs indexed");
        for w in WORKERS {
            let par = difference_au_exec(&l, &r, &exec(w)).unwrap();
            prop_assert_eq!(&par, &seq, "workers = {}", w);
        }
    }
}

// ---------------------------------------------------------------------------
// shard-at-a-time pipeline vs operator-at-a-time (workers × shards)
// ---------------------------------------------------------------------------

/// Shard counts the ISSUE pins down for the pipeline driver.
const SHARDS: [usize; 3] = [1, 3, 8];

/// Operator-at-a-time sequential reference configuration.
fn cfg_operator() -> AuConfig {
    AuConfig { pipeline: false, workers: Some(1), ..AuConfig::default() }
}

/// Pipelined configuration with forced worker and shard counts. The
/// adaptive parallelism floor is disabled so the tiny proptest inputs
/// really run multi-worker (operator loops, breaker normalizations,
/// and the sharded chains alike) instead of degrading to the inline
/// path.
fn cfg_pipeline(workers: usize, shards: usize) -> AuConfig {
    AuConfig {
        workers: Some(workers),
        shards: Some(shards),
        min_rows_per_worker: Some(0),
        ..AuConfig::default()
    }
}

/// Queries covering the fusion rules end-to-end: full
/// select→join→project spines (one fused chain), select/project-only
/// chains, pipeline breakers mid-query (aggregate — both with a
/// projection tail that keeps the input chain fusable and directly over
/// a join, which exercises the order-faithful fallback seam), and the
/// set operators around fused chains.
fn pipeline_queries() -> Vec<Query> {
    use audb::query::table;
    let spine = table("t1")
        .select(col(1).geq(lit(0i64)))
        .join_on(table("t2"), col(0).eq(col(2)))
        .project(vec![(col(0).add(col(3)), "x"), (col(1), "y")]);
    vec![
        spine.clone(),
        // row-local chain without a join
        table("t1")
            .project(vec![(col(0), "a"), (col(1).mul(lit(2i64)), "b")])
            .select(col(1).gt(lit(-2i64)))
            .project(vec![(col(0).add(col(1)), "s")]),
        // comparison-predicate and cross joins under a projection
        table("t1")
            .join_on(table("t2"), col(0).leq(col(2)))
            .project(vec![(col(1), "a"), (col(3), "b")]),
        table("t1").cross(table("t2")).select(col(0).neq(col(3))),
        // aggregate mid-query over a fused (project-tailed) chain, with
        // a row-local tail above the breaker
        table("t1")
            .select(col(0).leq(lit(3i64)))
            .join_on(table("t2"), col(0).eq(col(2)))
            .project(vec![(col(0), "g"), (col(1).add(col(3)), "v")])
            .aggregate(
                vec![0],
                vec![
                    AggSpec::new(AggFunc::Sum, col(1), "s"),
                    AggSpec::new(AggFunc::Avg, col(1), "a"),
                    AggSpec::new(AggFunc::Min, col(1), "lo"),
                ],
            )
            .select(col(1).geq(lit(-50i64))),
        // aggregate directly over a join: the probe chain is not
        // order-faithful, so the whole subtree must fall back
        table("t1")
            .join_on(table("t2"), col(0).eq(col(2)))
            .aggregate(vec![1], vec![AggSpec::new(AggFunc::Sum, col(3), "s"), AggSpec::count("c")]),
        // set operators with fused chains on both sides
        table("t1")
            .select(col(0).gt(lit(0i64)))
            .union(table("t1").project(vec![(col(0), "A"), (col(1), "B")])),
        table("t1").difference(table("t2").project(vec![(col(0), "A"), (col(1), "B")])),
        table("t1").project(vec![(col(0), "a")]).distinct(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The tentpole guarantee: the sharded pipeline's final result is
    /// byte-identical to the operator-at-a-time sequential path for
    /// every (workers × shards) combination.
    #[test]
    fn pipeline_identical_to_operator_at_a_time(
        t1 in au_relation_strategy("A", "B", 14),
        t2 in au_relation_strategy("C", "D", 14),
    ) {
        let mut db = AuDatabase::new();
        db.insert("t1", t1);
        db.insert("t2", t2);
        for q in pipeline_queries() {
            let reference = eval_au(&db, &q, &cfg_operator()).unwrap();
            for w in WORKERS {
                for s in SHARDS {
                    let got = eval_au(&db, &q, &cfg_pipeline(w, s)).unwrap();
                    prop_assert_eq!(&got, &reference, "workers = {}, shards = {}, q = {}", w, s, &q);
                }
            }
        }
    }

    /// Float aggregation payloads: bound folds are order-sensitive
    /// (float addition is not associative), so this pins down the
    /// pipeline's order-faithful delivery into aggregation.
    #[test]
    fn pipeline_identical_with_float_folds(
        rows in proptest::collection::vec((-40i64..40, -40i64..40, 0u64..3), 1..14),
    ) {
        use audb::query::table;
        let t1 = AuRelation::from_rows(
            Schema::named(&["A", "B"]),
            rows.iter()
                .map(|(a, b, k)| {
                    // 0.1 steps are not dyadic: float sums depend on order
                    (
                        RangeTuple::new(vec![
                            RangeValue::certain(Value::Int(a % 4)),
                            RangeValue::certain(Value::float(*b as f64 * 0.1)),
                        ]),
                        AuAnnot::triple(*k, *k, k + 1),
                    )
                })
                .collect(),
        );
        let mut db = AuDatabase::new();
        db.insert("t1", t1.clone());
        db.insert("t2", t1);
        let q = table("t1")
            .select(col(1).geq(lit(-100i64)))
            .join_on(table("t2"), col(0).eq(col(2)))
            .project(vec![(col(0), "g"), (col(1).add(col(3)), "v")])
            .aggregate(vec![0], vec![AggSpec::new(AggFunc::Sum, col(1), "s")]);
        let reference = eval_au(&db, &q, &cfg_operator()).unwrap();
        for w in WORKERS {
            for s in SHARDS {
                let got = eval_au(&db, &q, &cfg_pipeline(w, s)).unwrap();
                prop_assert_eq!(&got, &reference, "workers = {}, shards = {}", w, s);
            }
        }
    }

    /// The executor-threaded deterministic engine: pipelined evaluation
    /// for any workers × shards equals the operator-at-a-time
    /// sequential path, on the same query shapes.
    #[test]
    fn det_pipeline_identical_to_operator_at_a_time(
        t1 in au_relation_strategy("A", "B", 14),
        t2 in au_relation_strategy("C", "D", 14),
    ) {
        use audb::query::det::eval_det_opts;
        let mut db = Database::new();
        db.insert("t1", t1.sg_world());
        db.insert("t2", t2.sg_world());
        for q in pipeline_queries() {
            let reference = eval_det_opts(&db, &q, &exec(1), false, None, false).unwrap();
            for w in WORKERS {
                for s in SHARDS {
                    for compiled in [false, true] {
                        let got = eval_det_opts(&db, &q, &exec(w), true, Some(s), compiled).unwrap();
                        prop_assert_eq!(
                            &got, &reference,
                            "workers = {}, shards = {}, compiled = {}, q = {}", w, s, compiled, &q
                        );
                    }
                }
            }
        }
    }

    /// The rewrite middleware's fused `Enc → spine → Dec` pass: a
    /// session on any worker count matches the native AU result and the
    /// sequential session.
    #[test]
    fn rewrite_session_identical_across_worker_counts(
        t1 in au_relation_strategy("A", "B", 10),
        t2 in au_relation_strategy("C", "D", 10),
    ) {
        use audb::query::rewrite::RewriteSession;
        use audb::query::table;
        let mut db = AuDatabase::new();
        db.insert("t1", t1);
        db.insert("t2", t2);
        let q = table("t1")
            .select(col(1).geq(lit(-2i64)))
            .join_on(table("t2"), col(0).eq(col(2)))
            .project(vec![(col(0), "x"), (col(1).add(col(3)), "y")]);
        let reference = RewriteSession::new(&db).with_workers(Some(1)).eval(&q).unwrap();
        prop_assert_eq!(
            &reference,
            &eval_au(&db, &q, &cfg_operator()).unwrap(),
            "rewrite vs native"
        );
        for w in WORKERS {
            let got = RewriteSession::new(&db).with_workers(Some(w)).eval(&q).unwrap();
            prop_assert_eq!(&got, &reference, "workers = {}", w);
        }
    }
}

// ---------------------------------------------------------------------------
// adversarial partition shapes
// ---------------------------------------------------------------------------

/// `n` rows that all share one join/group key (one giant hash bucket /
/// one group), mixing certain and uncertain payloads.
fn all_same_key(n: usize) -> AuRelation {
    let rows = (0..n)
        .map(|i| {
            let payload = if i % 3 == 0 {
                RangeValue::range(i as i64 - 1, i as i64, i as i64 + 2)
            } else {
                RangeValue::certain(Value::Int(i as i64))
            };
            (
                RangeTuple::new(vec![RangeValue::certain(Value::Int(7)), payload]),
                AuAnnot::triple(1, 1, 1 + (i as u64 % 2)),
            )
        })
        .collect();
    AuRelation::from_rows(Schema::named(&["k", "v"]), rows)
}

#[test]
fn adversarial_shapes_identical_across_worker_counts() {
    let empty = AuRelation::empty(Schema::named(&["k", "v"]));
    let single = AuRelation::from_rows(
        Schema::named(&["k", "v"]),
        vec![au_row(
            vec![RangeValue::certain(Value::Int(7)), RangeValue::range(0i64, 1i64, 2i64)],
            1,
            1,
            2,
        )],
    );
    let bucket = all_same_key(300);
    let pred = col(0).eq(col(2));
    let aggs = [AggSpec::new(AggFunc::Sum, col(1), "s"), AggSpec::count("c")];

    for l in [&empty, &single, &bucket] {
        for r in [&empty, &single, &bucket] {
            let seq_join = join_au_planned_exec(l, r, Some(&pred), &exec(1)).unwrap();
            let seq_diff = difference_au_exec(l, r, &exec(1)).unwrap();
            assert_eq!(difference_au_scan(l, r).unwrap(), seq_diff, "scan vs indexed difference");
            for w in WORKERS {
                let join = join_au_planned_exec(l, r, Some(&pred), &exec(w)).unwrap();
                assert_eq!(join, seq_join, "join, workers = {w}");
                let diff = difference_au_exec(l, r, &exec(w)).unwrap();
                assert_eq!(diff, seq_diff, "difference, workers = {w}");
            }
        }
        let seq_agg = aggregate_au_exec(l, &[0], &aggs, None, &exec(1)).unwrap();
        assert_eq!(aggregate_au_scan(l, &[0], &aggs, None).unwrap(), seq_agg);
        for w in WORKERS {
            let agg = aggregate_au_exec(l, &[0], &aggs, None, &exec(w)).unwrap();
            assert_eq!(agg, seq_agg, "aggregate, workers = {w}");
        }

        // the row-local tail on the same shapes
        let pred = col(1).geq(lit(3i64));
        let proj = [(col(1), "v".to_string()), (col(0).add(col(1)), "s".to_string())];
        let seq_sel = select_au_exec(l, &pred, &exec(1)).unwrap();
        let seq_proj = project_au_exec(l, &proj, &exec(1)).unwrap();
        let seq_enc = enc_relation_exec(l, &exec(1)).unwrap();
        let seq_dec = dec_relation_exec(&seq_enc, &l.schema, &exec(1)).unwrap();
        assert_eq!(&seq_dec, l, "Enc/Dec round trip");
        for w in WORKERS {
            assert_eq!(select_au_exec(l, &pred, &exec(w)).unwrap(), seq_sel, "select, w = {w}");
            assert_eq!(project_au_exec(l, &proj, &exec(w)).unwrap(), seq_proj, "project, w = {w}");
            let enc = enc_relation_exec(l, &exec(w)).unwrap();
            assert_eq!(enc, seq_enc, "enc, w = {w}");
            assert_eq!(
                dec_relation_exec(&enc, &l.schema, &exec(w)).unwrap(),
                seq_dec,
                "dec, w = {w}"
            );
        }
    }

    // normalizing one giant duplicated bucket (every tuple hashes into
    // a handful of shards, morsels heavily skewed)
    let mut messy = AuRelation::empty(bucket.schema.clone());
    for _ in 0..3 {
        messy.extend_from(&bucket);
    }
    let seq = messy.clone().into_normalized();
    for w in WORKERS {
        let mut par = messy.clone();
        par.normalize_with(&exec(w)).unwrap();
        assert_eq!(par, seq, "normalize, workers = {w}");
    }
}

#[test]
fn det_join_identical_across_worker_counts() {
    let l = all_same_key(200).sg_world();
    let r = all_same_key(150).sg_world();
    for pred in [Some(col(0).eq(col(2))), Some(col(1).lt(col(3))), None] {
        let seq = join_det_planned_exec(&l, &r, pred.as_ref(), &exec(1)).unwrap();
        for w in WORKERS {
            let par = join_det_planned_exec(&l, &r, pred.as_ref(), &exec(w)).unwrap();
            assert_eq!(par, seq, "workers = {w}, pred = {pred:?}");
        }
    }
}

// ---------------------------------------------------------------------------
// resource governance: deadlines, cancellation, budgets
// ---------------------------------------------------------------------------

use std::time::Duration;

/// `t1`/`t2` sized so joins really expand: every key collides, so the
/// equi-join produces n × n output rows from 2n input rows.
fn expanding_db(n: usize) -> AuDatabase {
    let mut db = AuDatabase::new();
    db.insert("t1", all_same_key(n));
    db.insert("t2", all_same_key(n));
    db
}

fn expanding_join() -> Query {
    use audb::query::table;
    table("t1").join_on(table("t2"), col(0).eq(col(2)))
}

/// Acceptance: `AuConfig::timeout` surfaces `DeadlineExceeded` — the
/// token is armed before the first driver entry, so an already-expired
/// deadline trips at the very first morsel boundary, on both the
/// operator-at-a-time and the pipelined engines.
#[test]
fn zero_timeout_reports_deadline_exceeded() {
    let db = expanding_db(64);
    let q = expanding_join();
    for cfg in [cfg_operator(), cfg_pipeline(4, 3)] {
        let err = eval_au(&db, &q, &cfg.with_timeout(Duration::ZERO)).unwrap_err();
        assert_eq!(err, EvalError::Exec(ExecError::DeadlineExceeded), "cfg = {cfg:?}");
    }
}

/// A generous deadline never trips: the governed run completes and is
/// byte-identical to the ungoverned reference.
#[test]
fn far_deadline_does_not_perturb_results() {
    let db = expanding_db(24);
    let q = expanding_join();
    let reference = eval_au(&db, &q, &cfg_operator()).unwrap();
    for w in WORKERS {
        for s in SHARDS {
            let cfg = cfg_pipeline(w, s)
                .with_timeout(Duration::from_secs(3600))
                .with_budget(BudgetSpec::unlimited());
            let got = eval_au(&db, &q, &cfg).unwrap();
            assert_eq!(got, reference, "workers = {w}, shards = {s}");
        }
    }
}

/// External cancellation through [`eval_au_cancellable`]: a tripped
/// token stops the query with the structured `Cancelled` verdict.
#[test]
fn cancelled_token_reports_cancelled() {
    let db = expanding_db(64);
    let q = expanding_join();
    let token = CancelToken::new();
    token.cancel();
    for cfg in [cfg_operator(), cfg_pipeline(4, 3)] {
        let err = eval_au_cancellable(&db, &q, &cfg, &token).unwrap_err();
        assert_eq!(err, EvalError::Exec(ExecError::Cancelled), "cfg = {cfg:?}");
    }
}

/// Acceptance: a join whose probe expansion exceeds the row budget
/// reports `BudgetExceeded` naming the `join-probe` charging site, on
/// both engines — and the budget is per-query, so the same config
/// immediately evaluates a small query afterwards.
#[test]
fn row_budget_trips_naming_join_probe() {
    use audb::query::table;
    // 96 × 96 colliding keys → 9216 probe output rows, far past the cap
    let db = expanding_db(96);
    let q = expanding_join();
    for cfg in [cfg_operator(), cfg_pipeline(4, 3)] {
        let cfg = cfg.with_budget(BudgetSpec::rows(64));
        match eval_au(&db, &q, &cfg).unwrap_err() {
            EvalError::Exec(ExecError::BudgetExceeded { operator, resource, limit, attempted }) => {
                assert_eq!(operator, "join-probe", "cfg = {cfg:?}");
                assert_eq!(resource, "rows");
                assert_eq!(limit, 64);
                assert!(attempted > limit, "attempted {attempted} must exceed limit {limit}");
            }
            other => panic!("expected BudgetExceeded, got {other:?} (cfg = {cfg:?})"),
        }
        // fresh meters per query: a non-expanding query under the same
        // budgeted config still runs to completion
        let small = table("t1").select(col(1).geq(lit(10_000i64)));
        let out = eval_au(&db, &small, &cfg).unwrap();
        assert!(out.rows().is_empty());
    }
}

/// A byte budget trips too, through the same charge sites.
#[test]
fn byte_budget_trips() {
    let db = expanding_db(96);
    let q = expanding_join();
    let cfg = cfg_pipeline(2, 3).with_budget(BudgetSpec::bytes(512));
    match eval_au(&db, &q, &cfg).unwrap_err() {
        EvalError::Exec(ExecError::BudgetExceeded { resource, .. }) => {
            assert_eq!(resource, "bytes");
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// deterministic fault injection (feature `faults`)
// ---------------------------------------------------------------------------

#[cfg(feature = "faults")]
mod fault_matrix {
    use super::*;
    use audb::exec::faults::{with_plan, FaultKind, FaultPlan, FaultRule};
    use std::time::Duration;

    fn small_db() -> AuDatabase {
        let mut db = AuDatabase::new();
        db.insert("t1", all_same_key(40));
        db.insert("t2", all_same_key(30));
        db
    }

    /// Acceptance: an injected worker panic surfaces as the structured
    /// `WorkerPanic` (payload preserved), and the engine — same config,
    /// same process — runs the next query untouched. The rule is
    /// persistent so the compiled → interpreted degradation retry hits
    /// it too and cannot silently recover.
    #[test]
    fn injected_panic_surfaces_structured_and_engine_recovers() {
        let db = small_db();
        let q = expanding_join();
        let cfg = cfg_pipeline(4, 3);
        let reference = eval_au(&db, &q, &cfg_operator()).unwrap();

        let plan = FaultPlan::new(vec![FaultRule::persistent(0, FaultKind::Panic)]);
        let err = with_plan(plan.clone(), || eval_au(&db, &q, &cfg)).unwrap_err();
        match err {
            EvalError::Exec(ExecError::WorkerPanic { payload, .. }) => {
                assert!(payload.contains("injected panic"), "payload preserved, got: {payload}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        assert!(plan.fired() >= 1, "the armed fault must actually fire");

        // recovery: the plan is uninstalled, the same config evaluates
        // the same query to the byte-identical result
        assert_eq!(eval_au(&db, &q, &cfg).unwrap(), reference);
    }

    /// Persistent injected *errors* surface as `ExecError::Injected`
    /// with the firing coordinates.
    #[test]
    fn injected_error_surfaces_structured() {
        let db = small_db();
        let q = expanding_join();
        let plan = FaultPlan::new(vec![FaultRule::persistent(0, FaultKind::Error)]);
        let err = with_plan(plan, || eval_au(&db, &q, &cfg_pipeline(2, 3))).unwrap_err();
        match err {
            EvalError::Exec(ExecError::Injected { morsel, .. }) => assert_eq!(morsel, 0),
            other => panic!("expected Injected, got {other:?}"),
        }
    }

    /// Graceful degradation: a *one-shot* fault during the compiled run
    /// is absorbed by the interpreted retry — the query still returns
    /// the byte-identical result.
    #[test]
    fn one_shot_fault_is_absorbed_by_degradation() {
        let db = small_db();
        let q = expanding_join();
        let reference = eval_au(&db, &q, &cfg_operator()).unwrap();
        let cfg = AuConfig { compiled: true, ..cfg_pipeline(4, 3) };
        let plan = FaultPlan::new(vec![FaultRule::once(0, 0, FaultKind::Error)]);
        let got = with_plan(plan.clone(), || eval_au(&db, &q, &cfg)).unwrap();
        assert_eq!(got, reference, "degraded run must be byte-identical");
        assert_eq!(plan.fired(), 1, "the fault fired and was absorbed");
    }

    /// A miss-addressed plan (a driver sequence number the query never
    /// reaches) fires nothing and perturbs nothing.
    #[test]
    fn zero_fault_run_is_byte_identical() {
        let db = small_db();
        let q = expanding_join();
        let reference = eval_au(&db, &q, &cfg_operator()).unwrap();
        let plan = FaultPlan::new(vec![FaultRule::once(usize::MAX, 0, FaultKind::Panic)]);
        let got = with_plan(plan.clone(), || eval_au(&db, &q, &cfg_pipeline(4, 3))).unwrap();
        assert_eq!(got, reference);
        assert_eq!(plan.fired(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

        /// The fault matrix the ISSUE pins down: {panic, error, delay}
        /// injected at a random (driver, morsel) checkpoint, across the
        /// workers × shards grid, over the select/join/aggregate query
        /// corpus. The contract:
        ///
        /// * a **delay** alone never changes the outcome — the run
        ///   completes byte-identical to the sequential reference;
        /// * a panic or error either surfaces as a *structured*
        ///   [`ExecError`] (never a wedge, never a garbled result), or
        ///   the run completes byte-identical — the latter when the
        ///   checkpoint was never reached or the one-shot fault was
        ///   absorbed by the compiled → interpreted degradation retry;
        /// * runs whose plan never fires are always byte-identical.
        #[test]
        fn fault_matrix_structured_error_or_identical(
            t1 in au_relation_strategy("A", "B", 10),
            t2 in au_relation_strategy("C", "D", 10),
            qi in 0usize..64,
            driver in 0usize..8,
            morsel in 0usize..6,
            kind_pick in 0usize..3,
            wi in 0usize..WORKERS.len(),
            si in 0usize..SHARDS.len(),
        ) {
            let kind = [
                FaultKind::Panic,
                FaultKind::Error,
                FaultKind::Delay(Duration::from_millis(1)),
            ][kind_pick];
            let queries = pipeline_queries();
            let q = &queries[qi % queries.len()];
            let mut db = AuDatabase::new();
            db.insert("t1", t1);
            db.insert("t2", t2);

            let reference = eval_au(&db, q, &cfg_operator()).unwrap();
            let cfg = cfg_pipeline(WORKERS[wi], SHARDS[si]);
            let plan = FaultPlan::new(vec![FaultRule::once(driver, morsel, kind)]);
            let got = with_plan(plan.clone(), || eval_au(&db, q, &cfg));

            match got {
                Ok(out) => {
                    // completed runs are byte-identical, fault or not
                    prop_assert_eq!(
                        &out, &reference,
                        "kind = {:?}, driver = {}, morsel = {}, fired = {}, q = {}",
                        kind, driver, morsel, plan.fired(), q
                    );
                }
                Err(EvalError::Exec(e)) => {
                    prop_assert!(
                        plan.fired() >= 1,
                        "a run without a fired fault must not fail: {:?}", e
                    );
                    prop_assert!(
                        !matches!(kind, FaultKind::Delay(_)),
                        "a delay alone must never fail a query: {:?}", e
                    );
                    match e {
                        ExecError::WorkerPanic { ref payload, .. } => prop_assert!(
                            payload.contains("injected panic"),
                            "panic payload preserved, got: {}", payload
                        ),
                        ExecError::Injected { .. } => {}
                        ref other => prop_assert!(
                            false,
                            "unexpected structured fault {:?} for injected {:?}", other, kind
                        ),
                    }
                }
                Err(other) => prop_assert!(false, "non-structured failure: {:?}", other),
            }

            // whatever the fault did, the engine evaluates the same
            // query again (plan uninstalled) to the identical result
            prop_assert_eq!(&eval_au(&db, q, &cfg).unwrap(), &reference);
        }
    }
}
